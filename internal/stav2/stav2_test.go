package stav2

import (
	"math/rand"
	"strings"
	"testing"

	"gotaskflow/internal/circuit"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/sta"
)

const clock = 2000.0

func compare(t *testing.T, got, ref *sta.Timing, label string) {
	t.Helper()
	for v := range got.Ckt.Gates {
		for tr := 0; tr < 2; tr++ {
			if got.Arrival[tr][v] != ref.Arrival[tr][v] {
				t.Fatalf("%s: arrival[%d][%d] = %v, want %v", label, tr, v, got.Arrival[tr][v], ref.Arrival[tr][v])
			}
			if got.Slew[tr][v] != ref.Slew[tr][v] {
				t.Fatalf("%s: slew[%d][%d] mismatch", label, tr, v)
			}
			if got.Required[tr][v] != ref.Required[tr][v] {
				t.Fatalf("%s: required[%d][%d] = %v, want %v", label, tr, v, got.Required[tr][v], ref.Required[tr][v])
			}
			if got.Slack[tr][v] != ref.Slack[tr][v] {
				t.Fatalf("%s: slack[%d][%d] mismatch", label, tr, v)
			}
			if got.EarlyArrival[tr][v] != ref.EarlyArrival[tr][v] {
				t.Fatalf("%s: early arrival[%d][%d] mismatch", label, tr, v)
			}
			if got.EarlySlack[tr][v] != ref.EarlySlack[tr][v] {
				t.Fatalf("%s: early slack[%d][%d] mismatch", label, tr, v)
			}
		}
	}
}

func TestFullUpdateMatchesSequential(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 1500, Seed: 8})
	tm := sta.New(ckt, clock)
	a := New(tm, 4)
	defer a.Close()
	a.Run(tm.FullUpdate())

	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "full")
}

func TestIncrementalMatchesSequential(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 1000, Seed: 17})
	tm := sta.New(ckt, clock)
	a := New(tm, 4)
	defer a.Close()
	a.Run(tm.FullUpdate())

	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		seeds := tm.RandomModifier(rng)
		if len(seeds) == 0 {
			continue
		}
		a.Run(tm.PrepareUpdate(seeds))
		ref := sta.New(ckt, clock)
		ref.FullUpdateSequential()
		compare(t, tm, ref, "incremental")
	}
}

func TestV1V2Agree(t *testing.T) {
	// The paper's central claim setup: v1 and v2 compute identical timing.
	ckt1 := circuit.Generate("t", circuit.Config{Gates: 800, Seed: 33})
	ckt2 := circuit.Generate("t", circuit.Config{Gates: 800, Seed: 33})
	tm2 := sta.New(ckt2, clock)
	a2 := New(tm2, 2)
	defer a2.Close()
	a2.Run(tm2.FullUpdate())

	ref := sta.New(ckt1, clock)
	ref.FullUpdateSequential()
	compare(t, tm2, ref, "v2-vs-seq")
}

func TestSharedExecutor(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()
	ckt := circuit.Generate("t", circuit.Config{Gates: 300, Seed: 3})
	tm := sta.New(ckt, clock)
	a := NewShared(tm, e)
	a.Run(tm.FullUpdate())
	if a.NumWorkers() != 2 {
		t.Fatalf("NumWorkers = %d", a.NumWorkers())
	}
	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "shared")
}

func TestTaskflowDumpFigure8(t *testing.T) {
	// The paper's Figure 8: the task dependency graph of a single timing
	// update on the sample circuit.
	ckt := circuit.Figure8()
	tm := sta.New(ckt, clock)
	a := New(tm, 2)
	defer a.Close()
	tf := a.Taskflow(tm.FullUpdate())
	var sb strings.Builder
	if err := tf.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"inp1"`, `"u1"`, `"u4"`, `"f1:D"`, `"out"`, `"u1" -> "u4";`, `"fwd_bwd_barrier"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "figure8")
}

func TestRepeatedIncrementalStress(t *testing.T) {
	ckt := circuit.Generate("t", circuit.Config{Gates: 2000, Seed: 77})
	tm := sta.New(ckt, clock)
	a := New(tm, 2)
	defer a.Close()
	a.Run(tm.FullUpdate())
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 100; iter++ {
		seeds := tm.RandomModifier(rng)
		if len(seeds) == 0 {
			continue
		}
		a.Run(tm.PrepareUpdate(seeds))
	}
	ref := sta.New(ckt, clock)
	ref.FullUpdateSequential()
	compare(t, tm, ref, "stress")
}

// Package stav2 is the OpenTimer-v2-style timing driver of the
// Cpp-Taskflow paper (Section IV-B): every timing update creates and
// launches a fresh task dependency graph over the affected cone — one task
// per gate propagation, wired by the cone-internal dependencies — and
// dispatches it to the shared work-stealing executor. Computations flow
// naturally and asynchronously with the timing graph instead of marching
// through level barriers, which is where v2's speedup over v1 comes from.
package stav2

import (
	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/sta"
)

// Analyzer drives incremental timing updates with per-update taskflows.
type Analyzer struct {
	T    *sta.Timing
	exec *executor.Executor

	// tasks is an n-sized scratch mapping gate -> its task in the update
	// under construction; member tracks cone membership. Allocated once.
	tasks  []core.Task
	member []bool
}

// New creates an analyzer with its own work-stealing executor of the given
// size.
func New(t *sta.Timing, workers int) *Analyzer {
	return NewShared(t, executor.New(workers))
}

// NewShared creates an analyzer on a shared executor (paper Section III-E:
// executors are shareable across modules).
func NewShared(t *sta.Timing, e *executor.Executor) *Analyzer {
	n := t.Ckt.NumGates()
	return &Analyzer{
		T:      t,
		exec:   e,
		tasks:  make([]core.Task, n),
		member: make([]bool, n),
	}
}

// Close shuts down the executor. Do not call it when the executor is
// shared with other components that are still running.
func (a *Analyzer) Close() { a.exec.Shutdown() }

// NumWorkers returns the executor's worker count.
func (a *Analyzer) NumWorkers() int { return a.exec.NumWorkers() }

// Run applies one timing update by building and dispatching a task
// dependency graph: a forward subgraph over the affected cone, a barrier,
// and a backward subgraph over the required-time cone (paper Figure 8
// shows one such graph). Task failures are returned, not re-panicked.
func (a *Analyzer) Run(u sta.Update) error {
	tf := a.buildTaskflow(u)
	return tf.WaitForAll()
}

// Taskflow builds the update's task dependency graph without dispatching
// it — used by the examples to dump the Figure-8 graph.
func (a *Analyzer) Taskflow(u sta.Update) *core.Taskflow {
	return a.buildTaskflow(u)
}

func (a *Analyzer) buildTaskflow(u sta.Update) *core.Taskflow {
	t := a.T
	g := t.Ckt.Gates
	tf := core.NewShared(a.exec).SetName("timing_update")

	// Forward subgraph: task per cone node, cone-internal fanin edges.
	for _, v := range u.Fwd {
		v := v
		a.member[v] = true
		a.tasks[v] = tf.Emplace1(func() { t.RelaxForward(v) }).Name(g[v].Name)
	}
	for _, v := range u.Fwd {
		for _, wi := range g[v].Fanout {
			if w := int(wi); a.member[w] {
				a.tasks[v].Precede(a.tasks[w])
			}
		}
	}
	// Barrier: the backward pass consumes delays produced anywhere in the
	// forward cone. Wiring the cone's sinks suffices — every forward task
	// reaches a sink, so the barrier transitively waits for all of them.
	barrier := tf.Placeholder().Name("fwd_bwd_barrier")
	for _, v := range u.Fwd {
		isSink := true
		for _, wi := range g[v].Fanout {
			if a.member[wi] {
				isSink = false
				break
			}
		}
		if isSink {
			a.tasks[v].Precede(barrier)
		}
	}
	for _, v := range u.Fwd {
		a.member[v] = false
	}

	// Backward subgraph: reversed cone edges; its sources hang off the
	// barrier and reach every backward task transitively.
	for _, v := range u.Bwd {
		v := v
		a.member[v] = true
		a.tasks[v] = tf.Emplace1(func() { t.RelaxBackward(v) }).Name(g[v].Name + "'")
	}
	for _, v := range u.Bwd {
		hasConeFanout := false
		for _, wi := range g[v].Fanout {
			if w := int(wi); a.member[w] {
				a.tasks[w].Precede(a.tasks[v])
				hasConeFanout = true
			}
		}
		if !hasConeFanout {
			barrier.Precede(a.tasks[v])
		}
	}
	for _, v := range u.Bwd {
		a.member[v] = false
	}
	return tf
}

package mnist

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSyntheticShapes(t *testing.T) {
	d := Synthetic(100, 1)
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	classes := map[uint8]bool{}
	for i, img := range d.Images {
		if len(img) != Pixels {
			t.Fatalf("image %d has %d pixels", i, len(img))
		}
		for p, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("image %d pixel %d = %v out of [0,1]", i, p, v)
			}
		}
		if d.Labels[i] >= NumClasses {
			t.Fatalf("label %d out of range", d.Labels[i])
		}
		classes[d.Labels[i]] = true
	}
	if len(classes) < 5 {
		t.Fatalf("only %d classes in 100 samples", len(classes))
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(50, 7)
	b := Synthetic(50, 7)
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across same-seed runs")
		}
		for p := range a.Images[i] {
			if a.Images[i][p] != b.Images[i][p] {
				t.Fatal("pixels differ across same-seed runs")
			}
		}
	}
	c := Synthetic(50, 8)
	same := true
	for i := range a.Images {
		if a.Labels[i] != c.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestSyntheticClassesAreSeparable(t *testing.T) {
	// A nearest-centroid classifier must beat random guessing by a wide
	// margin, or the DNN experiment would be meaningless.
	train := Synthetic(500, 3)
	test := Synthetic(200, 4)
	centroids := make([][]float64, NumClasses)
	counts := make([]int, NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, Pixels)
	}
	for i, img := range train.Images {
		c := train.Labels[i]
		counts[c]++
		for p, v := range img {
			centroids[c][p] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for p := range centroids[c] {
			centroids[c][p] /= float64(counts[c])
		}
	}
	correct := 0
	for i, img := range test.Images {
		best, bestD := -1, 1e18
		for c := range centroids {
			var d2 float64
			for p, v := range img {
				diff := v - centroids[c][p]
				d2 += diff * diff
			}
			if d2 < bestD {
				bestD, best = d2, c
			}
		}
		if uint8(best) == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy = %.2f, want >= 0.5 (dataset not learnable)", acc)
	}
}

func TestIDXImagesRoundTrip(t *testing.T) {
	d := Synthetic(30, 5)
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, d.Images); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXImages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("decoded %d images", len(got))
	}
	for i := range got {
		for p := range got[i] {
			// Quantization to bytes loses at most 1/510.
			diff := got[i][p] - d.Images[i][p]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1.0/255 {
				t.Fatalf("image %d pixel %d drifted by %v", i, p, diff)
			}
		}
	}
}

func TestIDXLabelsRoundTrip(t *testing.T) {
	labels := []uint8{0, 1, 2, 9, 5, 5, 3}
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("decoded %d labels", len(got))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d = %d, want %d", i, got[i], labels[i])
		}
	}
}

func TestIDXErrors(t *testing.T) {
	if _, err := ReadIDXImages(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty image stream accepted")
	}
	if _, err := ReadIDXLabels(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short label stream accepted")
	}
	var buf bytes.Buffer
	WriteIDXLabels(&buf, []uint8{1})
	if _, err := ReadIDXImages(&buf); err == nil {
		t.Fatal("label magic accepted as image file")
	}
	// Truncated image payload.
	buf.Reset()
	d := Synthetic(2, 1)
	WriteIDXImages(&buf, d.Images)
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadIDXImages(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated image stream accepted")
	}
	// Bad image row width.
	if err := WriteIDXImages(&buf, [][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("short image row accepted")
	}
}

// Property: label round-trip is exact for arbitrary byte slices (mod 10).
func TestQuickLabelRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		labels := make([]uint8, len(raw))
		for i, b := range raw {
			labels[i] = b % 10
		}
		var buf bytes.Buffer
		if err := WriteIDXLabels(&buf, labels); err != nil {
			return false
		}
		got, err := ReadIDXLabels(&buf)
		if err != nil || len(got) != len(labels) {
			return false
		}
		for i := range labels {
			if got[i] != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package mnist supplies the dataset plumbing for the DNN experiment of
// the Cpp-Taskflow paper (Section IV-C). The paper trains on the MNIST
// handwritten-digit set (60k 28×28 images); since downloading it is not
// possible here, Synthetic generates a learnable stand-in with identical
// shapes — label-conditioned blob patterns plus noise — so the training
// pipeline exercises the same tensors, batch counts and task graphs.
//
// The package also implements the real IDX file format (the encoding MNIST
// ships in) with full encode/decode round-tripping, so the loaders are the
// genuine article and a user with the original files can substitute them.
package mnist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
)

// ImageSize is the MNIST image edge length; images are ImageSize² pixels.
const ImageSize = 28

// Pixels is the flattened image dimensionality (784).
const Pixels = ImageSize * ImageSize

// NumClasses is the number of digit classes.
const NumClasses = 10

// Dataset holds images as float64 rows in [0,1] and their labels.
type Dataset struct {
	Images [][]float64 // each row has Pixels entries
	Labels []uint8
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Synthetic generates n examples of a learnable classification problem
// with MNIST's shapes: each class paints a Gaussian-ish blob at a
// class-specific location over background noise. Deterministic per seed.
func Synthetic(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Images: make([][]float64, n),
		Labels: make([]uint8, n),
	}
	for i := 0; i < n; i++ {
		label := uint8(rng.Intn(NumClasses))
		d.Labels[i] = label
		img := make([]float64, Pixels)
		// Background noise.
		for p := range img {
			img[p] = 0.1 * rng.Float64()
		}
		// Class-specific blob center on a 5x2 grid of anchor points.
		cx := 5 + int(label%5)*4 + rng.Intn(3)
		cy := 8 + int(label/5)*10 + rng.Intn(3)
		for dy := -3; dy <= 3; dy++ {
			for dx := -3; dx <= 3; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= ImageSize || y < 0 || y >= ImageSize {
					continue
				}
				dist := float64(dx*dx + dy*dy)
				img[y*ImageSize+x] += 0.9 / (1 + dist/2)
			}
		}
		for p := range img {
			if img[p] > 1 {
				img[p] = 1
			}
		}
		d.Images[i] = img
	}
	return d
}

// IDX magic numbers: unsigned-byte data, 3 dimensions (images) or 1
// dimension (labels).
const (
	magicImages = 0x00000803
	magicLabels = 0x00000801
)

// WriteIDXImages encodes images in the MNIST IDX3 format (pixels quantized
// to bytes).
func WriteIDXImages(w io.Writer, images [][]float64) error {
	hdr := [4]uint32{magicImages, uint32(len(images)), ImageSize, ImageSize}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, Pixels)
	for i, img := range images {
		if len(img) != Pixels {
			return fmt.Errorf("mnist: image %d has %d pixels, want %d", i, len(img), Pixels)
		}
		for p, v := range img {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[p] = byte(v*255 + 0.5)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadIDXImages decodes an IDX3 image file into [0,1] float rows.
func ReadIDXImages(r io.Reader) ([][]float64, error) {
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("mnist: short IDX image header: %w", err)
		}
	}
	if hdr[0] != magicImages {
		return nil, fmt.Errorf("mnist: bad image magic %#x", hdr[0])
	}
	if hdr[2] != ImageSize || hdr[3] != ImageSize {
		return nil, fmt.Errorf("mnist: unexpected image size %dx%d", hdr[2], hdr[3])
	}
	n := int(hdr[1])
	images := make([][]float64, n)
	buf := make([]byte, Pixels)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("mnist: truncated image %d: %w", i, err)
		}
		img := make([]float64, Pixels)
		for p, b := range buf {
			img[p] = float64(b) / 255
		}
		images[i] = img
	}
	return images, nil
}

// WriteIDXLabels encodes labels in the MNIST IDX1 format.
func WriteIDXLabels(w io.Writer, labels []uint8) error {
	hdr := [2]uint32{magicLabels, uint32(len(labels))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	_, err := w.Write(labels)
	return err
}

// ReadIDXLabels decodes an IDX1 label file.
func ReadIDXLabels(r io.Reader) ([]uint8, error) {
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("mnist: short IDX label header: %w", err)
		}
	}
	if hdr[0] != magicLabels {
		return nil, fmt.Errorf("mnist: bad label magic %#x", hdr[0])
	}
	labels := make([]uint8, hdr[1])
	if _, err := io.ReadFull(r, labels); err != nil {
		return nil, fmt.Errorf("mnist: truncated labels: %w", err)
	}
	return labels, nil
}

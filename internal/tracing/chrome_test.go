package tracing

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTrace builds a deterministic executor.Trace by hand: two workers
// running a two-task chain (alpha releases beta across workers) with a
// steal, a park/unpark pair and an external injection push. WriteTrace on
// it must be byte-stable, which the golden file pins.
func fixedTrace() executor.Trace {
	ms := func(d int64) time.Duration { return time.Duration(d) * time.Millisecond }
	alpha := executor.TaskMeta{Flow: "golden", Name: "alpha", ID: 1, Idx: 0, Gen: 1}
	beta := executor.TaskMeta{Flow: "golden", Name: "beta", ID: 2, Idx: 1, Gen: 1}
	anon := executor.TaskMeta{}
	return executor.Trace{
		Workers: 2,
		Events: []executor.TraceEvent{
			{Ts: ms(0), Worker: executor.ExternalWorker, Kind: executor.EvInjectPush, Arg: 1, Meta: anon},
			{Ts: ms(1), Worker: 0, Kind: executor.EvUnpark, Meta: anon},
			{Ts: ms(2), Worker: 0, Kind: executor.EvInjectDrain, Meta: anon},
			{Ts: ms(3), Worker: 0, Kind: executor.EvTaskStart, Meta: alpha},
			{Ts: ms(5), Worker: 0, Kind: executor.EvDepRelease, Arg: 2, Meta: alpha},
			{Ts: ms(5), Worker: 0, Kind: executor.EvWakePrecise, Arg: 1, Meta: anon},
			{Ts: ms(6), Worker: 0, Kind: executor.EvTaskEnd, Meta: alpha},
			{Ts: ms(7), Worker: 1, Kind: executor.EvSteal, Arg: 0, Meta: anon},
			{Ts: ms(8), Worker: 1, Kind: executor.EvTaskStart, Meta: beta},
			{Ts: ms(12), Worker: 1, Kind: executor.EvTaskEnd, Meta: beta},
			{Ts: ms(13), Worker: 0, Kind: executor.EvPark, Meta: anon},
		},
	}
}

// TestWriteTraceGolden pins the exporter's exact output for a fixed input
// trace. Regenerate with `go test ./internal/tracing/ -run Golden -update`
// after deliberate format changes.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, fixedTrace()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Round-trip: the golden bytes are valid trace-event JSON.
	var doc map[string]any
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("golden trace lacks a traceEvents array")
	}
}

// traceDoc is the unmarshalled shape used by the structural assertions.
type traceDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

// exportForRun runs fn under an active capture on e and returns the
// unmarshalled Chrome export.
func exportForRun(t *testing.T, e *executor.Executor, fn func()) traceDoc {
	t.Helper()
	if !e.StartTrace() {
		t.Fatal("StartTrace failed")
	}
	fn()
	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace failed")
	}
	if tr.Dropped != 0 {
		t.Fatalf("capture dropped %d events; enlarge the test ring", tr.Dropped)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return doc
}

// TestWavefrontTraceChromeExport is the acceptance gate for the trace
// pipeline: a named wavefront run exports to valid trace-event JSON with
// named task spans, at least three scheduler event kinds, and flow arrows
// that follow real dependency edges of the grid.
func TestWavefrontTraceChromeExport(t *testing.T) {
	const G = 4
	e := executor.New(4, executor.WithTracing(1<<14))
	defer e.Shutdown()
	tf := core.NewShared(e).SetName("wavefront")

	// G×G wavefront: cell (i,j) precedes (i+1,j) and (i,j+1).
	name := func(i, j int) string {
		return "w_" + string(rune('0'+i)) + "_" + string(rune('0'+j))
	}
	cells := make([][]core.Task, G)
	for i := 0; i < G; i++ {
		cells[i] = make([]core.Task, G)
		for j := 0; j < G; j++ {
			cells[i][j] = tf.Emplace1(func() {}).Name(name(i, j))
		}
	}
	for i := 0; i < G; i++ {
		for j := 0; j < G; j++ {
			if i+1 < G {
				cells[i][j].Precede(cells[i+1][j])
			}
			if j+1 < G {
				cells[i][j].Precede(cells[i][j+1])
			}
		}
	}
	// edges[to][from] marks a real dependency edge of the grid.
	edges := map[string]map[string]bool{}
	for i := 0; i < G; i++ {
		for j := 0; j < G; j++ {
			add := func(ti, tj int) {
				to := name(ti, tj)
				if edges[to] == nil {
					edges[to] = map[string]bool{}
				}
				edges[to][name(i, j)] = true
			}
			if i+1 < G {
				add(i+1, j)
			}
			if j+1 < G {
				add(i, j+1)
			}
		}
	}

	// Let the workers park first: submitting onto an idle pool structurally
	// guarantees inject-push/drain, precise-wake and unpark events.
	time.Sleep(20 * time.Millisecond)
	doc := exportForRun(t, e, func() {
		if err := tf.Run(); err != nil {
			t.Fatal(err)
		}
	})

	// Perfetto-schema sanity: required fields on every event.
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		switch ev["ph"] {
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", ev)
			}
		case "f":
			if ev["bp"] != "e" {
				t.Fatalf("flow finish without bp=e: %v", ev)
			}
		}
	}

	// Named task spans: one "X" per grid cell, carrying the flow name.
	spanCount := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["cat"] == "task" {
			spanCount[ev["name"].(string)]++
			args := ev["args"].(map[string]any)
			if args["taskflow"] != "wavefront" {
				t.Fatalf("span %v lacks taskflow arg", ev)
			}
		}
	}
	for i := 0; i < G; i++ {
		for j := 0; j < G; j++ {
			if spanCount[name(i, j)] != 1 {
				t.Fatalf("cell %s has %d spans, want 1", name(i, j), spanCount[name(i, j)])
			}
		}
	}

	// Scheduler instants: at least three distinct kinds.
	instantKinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "i" && ev["cat"] == "sched" {
			instantKinds[ev["name"].(string)] = true
		}
	}
	if len(instantKinds) < 3 {
		t.Fatalf("only %d scheduler event kinds in export: %v", len(instantKinds), instantKinds)
	}

	// Flow arrows: every non-source cell is released exactly once, along a
	// real grid edge, and every "s" has a matching "f" bound to the
	// released cell's span start.
	starts := map[string]map[string]bool{} // to -> set of from
	finishes := map[float64]bool{}         // flow ids seen at "f"
	startIDs := map[float64]string{}       // flow id -> released cell
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "s":
			args := ev["args"].(map[string]any)
			from := args["from"].(string)
			to := args["to"].(string)
			if !edges[to][from] {
				t.Fatalf("flow arrow %s -> %s is not a grid edge", from, to)
			}
			if starts[to] == nil {
				starts[to] = map[string]bool{}
			}
			starts[to][from] = true
			startIDs[ev["id"].(float64)] = to
		case "f":
			finishes[ev["id"].(float64)] = true
		}
	}
	if len(starts) != G*G-1 {
		t.Fatalf("flow arrows released %d cells, want %d (every non-source cell)", len(starts), G*G-1)
	}
	for id := range startIDs {
		if !finishes[id] {
			t.Fatalf("flow id %v has a start but no finish", id)
		}
	}
}

// TestStealBatchInstantExport pins the export contract tracecheck
// enforces: a steal_batch instant is a sched-category thread-scoped "i"
// event whose args.arg carries the batch size (>= 2), emitted alongside
// the plain steal instant for the first task of the batch.
func TestStealBatchInstantExport(t *testing.T) {
	ms := func(d int64) time.Duration { return time.Duration(d) * time.Millisecond }
	anon := executor.TaskMeta{}
	tr := executor.Trace{
		Workers: 2,
		Events: []executor.TraceEvent{
			{Ts: ms(1), Worker: 1, Kind: executor.EvSteal, Arg: 0, Meta: anon},
			{Ts: ms(1), Worker: 1, Kind: executor.EvStealBatch, Arg: 5, Meta: anon},
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] != "steal_batch" {
			continue
		}
		found = true
		if ev["ph"] != "i" || ev["cat"] != "sched" || ev["s"] != "t" {
			t.Fatalf("steal_batch instant malformed: %v", ev)
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("steal_batch without args: %v", ev)
		}
		if size, ok := args["arg"].(float64); !ok || size != 5 {
			t.Fatalf("steal_batch args.arg = %v, want 5", args["arg"])
		}
	}
	if !found {
		t.Fatal("no steal_batch instant in export")
	}
}

// TestWriteTraceDroppedMetadata checks the overflow accounting surfaces in
// the export.
func TestWriteTraceDroppedMetadata(t *testing.T) {
	tr := fixedTrace()
	tr.Dropped = 7
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	other, ok := doc["otherData"].(map[string]any)
	if !ok || other["droppedEvents"].(float64) != 7 {
		t.Fatalf("dropped-event count not exported: %v", doc)
	}
}

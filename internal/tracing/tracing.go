// Package tracing records per-worker task execution timelines from an
// executor observer and exports them in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto), the role TFProf plays for Cpp-Taskflow:
// visualizing where every worker spends its time without modifying user
// code.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"gotaskflow/internal/executor"
)

// Event is one completed task execution on a worker.
type Event struct {
	Worker int
	Start  time.Duration // offset from profiler creation
	End    time.Duration
}

// Profiler is an executor.Observer that records task execution spans.
// Register it at executor construction:
//
//	p := tracing.NewProfiler()
//	e := executor.New(4, executor.WithObserver(p))
//
// or on a running executor with e.AddObserver(p).
//
// # Concurrency contract
//
// All methods are safe for concurrent use. Registration mid-run is safe:
// the executor snapshots its observer list once per task, so a Profiler
// always sees balanced OnTaskStart/OnTaskEnd pairs — it either observes a
// task entirely or not at all, never a dangling end. Snapshot-while-
// running is safe too: NumEvents, Events, TotalBusy and WriteChromeTrace
// may be called while workers are executing and observe a consistent
// prefix of completed spans (in-flight tasks appear once they end).
// Reset may race with a running task; that task's span is dropped rather
// than corrupted.
type Profiler struct {
	epoch time.Time

	mu     sync.Mutex
	open   map[int]time.Duration // worker -> start offset
	events []Event
}

var _ executor.Observer = (*Profiler)(nil)

// NewProfiler creates an empty profiler; its epoch is the creation time.
func NewProfiler() *Profiler {
	return &Profiler{
		epoch: time.Now(),
		open:  map[int]time.Duration{},
	}
}

// OnTaskStart implements executor.Observer.
func (p *Profiler) OnTaskStart(worker int) {
	now := time.Since(p.epoch)
	p.mu.Lock()
	p.open[worker] = now
	p.mu.Unlock()
}

// OnTaskEnd implements executor.Observer.
func (p *Profiler) OnTaskEnd(worker int) {
	now := time.Since(p.epoch)
	p.mu.Lock()
	if start, ok := p.open[worker]; ok {
		delete(p.open, worker)
		p.events = append(p.events, Event{Worker: worker, Start: start, End: now})
	}
	p.mu.Unlock()
}

// NumEvents returns the number of completed task executions recorded.
func (p *Profiler) NumEvents() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Events returns a copy of the recorded spans.
func (p *Profiler) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Reset discards all recorded events.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.open = map[int]time.Duration{}
	p.events = nil
	p.mu.Unlock()
}

// traceEvent is the Chrome trace-event wire format ("X" complete events).
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace exports the recorded spans as a Chrome trace-event JSON
// array, one "thread" per worker.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	evs := p.Events()
	out := make([]traceEvent, 0, len(evs))
	for i, e := range evs {
		out = append(out, traceEvent{
			Name: fmt.Sprintf("task#%d", i),
			Cat:  "task",
			Ph:   "X",
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64((e.End - e.Start).Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  e.Worker,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TotalBusy returns the summed task execution time per worker.
func (p *Profiler) TotalBusy() map[int]time.Duration {
	totals := map[int]time.Duration{}
	for _, e := range p.Events() {
		totals[e.Worker] += e.End - e.Start
	}
	return totals
}

// Package tracing renders execution timelines in the Chrome trace-event
// JSON format (chrome://tracing, Perfetto), the role TFProf plays for
// Cpp-Taskflow: visualizing where every worker spends its time without
// modifying user code.
//
// It has two layers. Profiler is an executor.Observer that aggregates
// completed task spans — cheap, always-on-capable, mutex-guarded, good for
// totals and coarse timelines. WriteTrace (chrome.go) renders the richer
// executor.Trace stream captured by StartTrace/StopTrace — named spans,
// scheduler instants and dependency flow arrows — recorded lock-free by
// the executor itself.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"gotaskflow/internal/executor"
)

// SpanName returns the display name for a task's trace span: the task's
// own name, else the positional fallback used by the DOT dumps (p + hex
// emplacement index), else "task" for anonymous one-shots.
func SpanName(m executor.TaskMeta) string {
	if m.Name != "" {
		return m.Name
	}
	if m.ID != 0 {
		return fmt.Sprintf("p%#x", m.Idx)
	}
	return "task"
}

// Event is one completed task execution on a worker.
type Event struct {
	Worker int
	Start  time.Duration // offset from profiler creation
	End    time.Duration
	// Name and Flow identify the task when it offered identity (graph
	// nodes do); both are "" for anonymous one-shots.
	Name string
	Flow string
}

// Profiler is an executor.Observer that records task execution spans.
// Register it at executor construction:
//
//	p := tracing.NewProfiler()
//	e := executor.New(4, executor.WithObserver(p))
//
// or on a running executor with e.AddObserver(p).
//
// # Concurrency contract
//
// All methods are safe for concurrent use. Registration mid-run is safe:
// the executor snapshots its observer list once per task, so a Profiler
// always sees balanced OnTaskStart/OnTaskEnd pairs — it either observes a
// task entirely or not at all, never a dangling end. Snapshot-while-
// running is safe too: NumEvents, Events, TotalBusy and WriteChromeTrace
// may be called while workers are executing and observe a consistent
// prefix of completed spans (in-flight tasks appear once they end).
// Reset is an epoch bump: spans that straddle it — including an
// OnTaskStart whose timestamp was taken before Reset but delivered after —
// are discarded rather than leaked into the new epoch.
type Profiler struct {
	epoch time.Time

	mu sync.Mutex
	// floor is the offset of the most recent Reset; opens and spans
	// strictly older than it belong to a discarded epoch.
	floor  time.Duration
	open   map[int]openSpan // worker -> in-flight span
	events []Event
}

type openSpan struct {
	start time.Duration
	meta  executor.TaskMeta
}

var _ executor.Observer = (*Profiler)(nil)

// NewProfiler creates an empty profiler; its epoch is the creation time.
func NewProfiler() *Profiler {
	return &Profiler{
		epoch: time.Now(),
		open:  map[int]openSpan{},
	}
}

// OnTaskStart implements executor.Observer.
func (p *Profiler) OnTaskStart(worker int, meta executor.TaskMeta) {
	p.startAt(worker, meta, time.Since(p.epoch))
}

// startAt is the timestamp-injected seam behind OnTaskStart: the clock is
// read before the lock is taken, so a Reset can slip between them. The
// floor check makes that interleaving drop the stale open instead of
// leaking it into the new epoch.
func (p *Profiler) startAt(worker int, meta executor.TaskMeta, now time.Duration) {
	p.mu.Lock()
	if now >= p.floor {
		p.open[worker] = openSpan{start: now, meta: meta}
	}
	p.mu.Unlock()
}

// OnTaskEnd implements executor.Observer.
func (p *Profiler) OnTaskEnd(worker int, _ executor.TaskMeta) {
	p.endAt(worker, time.Since(p.epoch))
}

func (p *Profiler) endAt(worker int, now time.Duration) {
	p.mu.Lock()
	if sp, ok := p.open[worker]; ok {
		delete(p.open, worker)
		// A span that started before the floor straddles a Reset; drop it.
		if sp.start >= p.floor {
			p.events = append(p.events, Event{
				Worker: worker,
				Start:  sp.start,
				End:    now,
				Name:   sp.meta.Name,
				Flow:   sp.meta.Flow,
			})
		}
	}
	p.mu.Unlock()
}

// NumEvents returns the number of completed task executions recorded.
func (p *Profiler) NumEvents() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Events returns a copy of the recorded spans.
func (p *Profiler) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Reset discards all recorded events and bumps the epoch floor: spans in
// flight at the Reset — even ones whose start timestamp was read before it
// but delivered after — are discarded, never recorded into the new epoch.
func (p *Profiler) Reset() {
	now := time.Since(p.epoch)
	p.mu.Lock()
	if now > p.floor {
		p.floor = now
	}
	p.open = map[int]openSpan{}
	p.events = nil
	p.mu.Unlock()
}

// traceEvent is the Chrome trace-event wire format ("X" complete events).
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace exports the recorded spans as a Chrome trace-event JSON
// array, one "thread" per worker. Spans carry task names when the tasks
// offered them (anonymous spans render as "task").
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	evs := p.Events()
	out := make([]traceEvent, 0, len(evs))
	for _, e := range evs {
		name := e.Name
		if name == "" {
			name = "task"
		}
		out = append(out, traceEvent{
			Name: name,
			Cat:  "task",
			Ph:   "X",
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64((e.End - e.Start).Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  e.Worker,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TotalBusy returns the summed task execution time per worker.
func (p *Profiler) TotalBusy() map[int]time.Duration {
	totals := map[int]time.Duration{}
	for _, e := range p.Events() {
		totals[e.Worker] += e.End - e.Start
	}
	return totals
}

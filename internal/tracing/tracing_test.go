package tracing

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

func runTasks(t *testing.T, p *Profiler, n int) {
	t.Helper()
	e := executor.New(2, executor.WithObserver(p))
	defer e.Shutdown()
	tf := core.NewShared(e)
	var count atomic.Int64
	for i := 0; i < n; i++ {
		tf.Emplace1(func() {
			count.Add(1)
			time.Sleep(100 * time.Microsecond)
		})
	}
	if err := tf.WaitForAll(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != int64(n) {
		t.Fatalf("ran %d tasks", count.Load())
	}
}

func TestProfilerRecordsAllTasks(t *testing.T) {
	p := NewProfiler()
	runTasks(t, p, 50)
	if got := p.NumEvents(); got != 50 {
		t.Fatalf("recorded %d events, want 50", got)
	}
	for _, e := range p.Events() {
		if e.End < e.Start {
			t.Fatal("event ends before it starts")
		}
		if e.Worker < 0 || e.Worker >= 2 {
			t.Fatalf("bad worker id %d", e.Worker)
		}
		if e.End-e.Start < 50*time.Microsecond {
			t.Fatalf("span %v too short for a 100µs task", e.End-e.Start)
		}
	}
}

func TestChromeTraceFormat(t *testing.T) {
	p := NewProfiler()
	runTasks(t, p, 10)
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 10 {
		t.Fatalf("trace has %d events, want 10", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["cat"] != "task" {
			t.Fatalf("malformed event: %v", ev)
		}
		if ev["dur"].(float64) <= 0 {
			t.Fatal("non-positive duration")
		}
	}
}

func TestTotalBusyAndReset(t *testing.T) {
	p := NewProfiler()
	runTasks(t, p, 20)
	totals := p.TotalBusy()
	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	if sum < 20*50*time.Microsecond {
		t.Fatalf("total busy %v implausibly small", sum)
	}
	p.Reset()
	if p.NumEvents() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	p := NewProfiler()
	runTasks(t, p, 5)
	evs := p.Events()
	evs[0].Worker = 99
	if p.Events()[0].Worker == 99 {
		t.Fatal("Events exposes internal storage")
	}
}

// TestProfilerRegisterAndReadWhileRunning pins the concurrency contract:
// a Profiler added to a RUNNING executor via AddObserver records balanced
// spans, and snapshot reads (NumEvents, Events, TotalBusy, Chrome export)
// may race with execution without tearing. Run under -race in CI.
func TestProfilerRegisterAndReadWhileRunning(t *testing.T) {
	e := executor.New(4)
	defer e.Shutdown()

	// Keep a steady stream of tasks flowing while we register and read,
	// pausing once the profiler has recorded plenty: an unthrottled feeder
	// grows the event list without bound while every reader iteration
	// copies it, which livelocks the race-instrumented single-CPU CI runs.
	const maxRecorded = 10_000
	p := NewProfiler()
	stop := make(chan struct{})
	var feeders sync.WaitGroup
	feeders.Add(1)
	var submitted atomic.Int64
	go func() {
		defer feeders.Done()
		var inflight sync.WaitGroup
		for {
			select {
			case <-stop:
				inflight.Wait()
				return
			default:
			}
			if p.NumEvents() >= maxRecorded {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			inflight.Add(1)
			submitted.Add(1)
			if err := e.SubmitFunc(func(executor.Context) {
				inflight.Done()
			}); err != nil {
				inflight.Done()
				return
			}
		}
	}()

	e.AddObserver(p) // mid-run registration

	// Concurrent snapshot readers.
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				n := p.NumEvents()
				evs := p.Events()
				if len(evs) < n-1 && len(evs) > n+1 {
					t.Error("Events/NumEvents wildly inconsistent")
				}
				for _, ev := range evs {
					if ev.End < ev.Start {
						t.Errorf("torn span: end %v before start %v", ev.End, ev.Start)
					}
				}
				_ = p.TotalBusy()
				if err := p.WriteChromeTrace(io.Discard); err != nil {
					t.Errorf("WriteChromeTrace: %v", err)
				}
			}
		}()
	}
	readers.Wait()
	// Under GOMAXPROCS=1 the readers can starve the feeder for their whole
	// run, leaving every executed task ahead of the mid-run registration.
	// Keep the stream alive until the profiler has provably observed one
	// post-registration task, so the final assertions hold on any schedule.
	for p.NumEvents() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	feeders.Wait()
	e.Shutdown()

	// Every span the profiler saw is balanced and sane; it saw a subset of
	// the stream (registration happened mid-run).
	evs := p.Events()
	if len(evs) == 0 {
		t.Fatal("mid-run registration recorded no spans")
	}
	if int64(len(evs)) > submitted.Load() {
		t.Fatalf("recorded %d spans for %d submissions", len(evs), submitted.Load())
	}
	for _, ev := range evs {
		if ev.End < ev.Start || ev.Worker < 0 || ev.Worker >= 4 {
			t.Fatalf("bad span: %+v", ev)
		}
	}
}

// TestProfilerResetDropsStraddlingStart is the regression test for the
// Reset race: OnTaskStart reads the clock before taking the lock, so a
// Reset can land in between — the stale open used to repopulate the map
// after Reset and pair with a later OnTaskEnd, leaking a span that
// straddles the epoch bump. Reset now records a floor timestamp and
// strictly-older opens are discarded. The timestamp-injected seams
// (startAt/endAt) reproduce the interleaving deterministically.
func TestProfilerResetDropsStraddlingStart(t *testing.T) {
	p := NewProfiler()
	meta := executor.TaskMeta{Name: "stale"}

	// The racing OnTaskStart read the clock at 1ms...
	staleNow := time.Millisecond
	// ...then Reset ran (its floor must exceed the stale timestamp)...
	time.Sleep(2 * time.Millisecond)
	p.Reset()
	// ...and only then did the start body take the lock.
	p.startAt(0, meta, staleNow)
	p.endAt(0, time.Since(time.Time{})) // any post-Reset end timestamp

	if got := p.NumEvents(); got != 0 {
		t.Fatalf("stale start leaked %d spans across Reset", got)
	}

	// A span opened before Reset and closed after is dropped too.
	p.OnTaskStart(1, meta)
	p.Reset()
	p.OnTaskEnd(1, meta)
	if got := p.NumEvents(); got != 0 {
		t.Fatalf("open-across-Reset span leaked: %d events", got)
	}

	// The new epoch records normally.
	p.OnTaskStart(2, executor.TaskMeta{Name: "fresh"})
	p.OnTaskEnd(2, executor.TaskMeta{})
	if got := p.NumEvents(); got != 1 {
		t.Fatalf("post-Reset span not recorded: %d events", got)
	}
	if ev := p.Events()[0]; ev.Name != "fresh" {
		t.Fatalf("post-Reset span name = %q, want fresh", ev.Name)
	}
}

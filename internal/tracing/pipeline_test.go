package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/pipeline"
)

// pipelineTrace builds a deterministic capture of a 2-line pipeline:
// line 0 runs tokens through pipes p0/p1 on worker 0, line 1 on worker 1,
// with one unrelated span that must be filtered out.
func pipelineTrace() executor.Trace {
	ms := func(d int64) time.Duration { return time.Duration(d) * time.Millisecond }
	cell := func(line int32, name string, id uint64) executor.TaskMeta {
		return executor.TaskMeta{Flow: "pipe2", Name: name, ID: id, Idx: line, Gen: 1}
	}
	other := executor.TaskMeta{Flow: "elsewhere", Name: "noise", ID: 99, Idx: 7, Gen: 1}
	return executor.Trace{
		Workers: 2,
		Events: []executor.TraceEvent{
			{Ts: ms(0), Worker: 0, Kind: executor.EvTaskStart, Meta: cell(0, "p0", 1)},
			{Ts: ms(2), Worker: 0, Kind: executor.EvTaskEnd, Meta: cell(0, "p0", 1)},
			{Ts: ms(2), Worker: 1, Kind: executor.EvTaskStart, Meta: cell(1, "p0", 3)},
			{Ts: ms(3), Worker: 0, Kind: executor.EvTaskStart, Meta: other},
			{Ts: ms(4), Worker: 0, Kind: executor.EvTaskEnd, Meta: other},
			{Ts: ms(4), Worker: 1, Kind: executor.EvTaskEnd, Meta: cell(1, "p0", 3)},
			{Ts: ms(4), Worker: 0, Kind: executor.EvTaskStart, Meta: cell(0, "p1", 2)},
			{Ts: ms(8), Worker: 0, Kind: executor.EvTaskEnd, Meta: cell(0, "p1", 2)},
		},
	}
}

func TestWriteLineTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLineTrace(&buf, pipelineTrace(), "pipe2"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	spansPerLine := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "noise" {
			t.Fatal("foreign-flow span leaked into the line trace")
		}
		spansPerLine[ev.Tid]++
	}
	if spansPerLine[0] != 2 || spansPerLine[1] != 1 {
		t.Fatalf("spans per line = %v, want line0:2 line1:1", spansPerLine)
	}
	if doc.Metadata["lines"] != float64(2) {
		t.Fatalf("metadata lines = %v, want 2", doc.Metadata["lines"])
	}
	occ, ok := doc.Metadata["occupancy"].(map[string]any)
	if !ok {
		t.Fatalf("metadata occupancy missing: %v", doc.Metadata)
	}
	// Window is [0ms, 8ms]. Line 0 is busy 2+4=6ms (0.75); line 1 2ms (0.25).
	if got := occ["line0"].(float64); got < 0.74 || got > 0.76 {
		t.Fatalf("line0 occupancy = %v, want 0.75", got)
	}
	if got := occ["line1"].(float64); got < 0.24 || got > 0.26 {
		t.Fatalf("line1 occupancy = %v, want 0.25", got)
	}
}

func TestLineOccupancy(t *testing.T) {
	occ := LineOccupancy(pipelineTrace(), "pipe2")
	if len(occ) != 2 {
		t.Fatalf("LineOccupancy returned %d lines, want 2", len(occ))
	}
	if occ[0] < 0.74 || occ[0] > 0.76 || occ[1] < 0.24 || occ[1] > 0.26 {
		t.Fatalf("occupancy = %v, want [0.75 0.25]", occ)
	}
	if LineOccupancy(pipelineTrace(), "nosuchflow") != nil {
		t.Fatal("unknown flow should return nil")
	}
}

// End to end: a traced executor running a real pipeline produces a line
// trace whose span count matches tokens × pipes and whose every line has
// nonzero occupancy.
func TestLineTraceEndToEnd(t *testing.T) {
	e := executor.New(2, executor.WithTracing(0))
	defer e.Shutdown()
	const n, lines = 32, 4
	p := pipeline.New(e, lines,
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			if pf.Token() >= n {
				pf.Stop()
			}
		}},
		pipeline.Pipe{Type: pipeline.Parallel, Fn: func(*pipeline.Pipeflow) {
			for i := 0; i < 5000; i++ {
				_ = i * i
			}
		}},
	).Named("stream")
	if !e.StartTrace() {
		t.Fatal("StartTrace refused")
	}
	if got := p.Run(); got != n {
		t.Fatalf("Run() = %d, want %d", got, n)
	}
	tr, ok := e.StopTrace()
	if !ok {
		t.Fatal("StopTrace: no capture")
	}
	occ := LineOccupancy(tr, "stream")
	if len(occ) != lines {
		t.Fatalf("observed %d lines, want %d", len(occ), lines)
	}
	for l, f := range occ {
		if f <= 0 {
			t.Fatalf("line %d occupancy = %v, want > 0", l, f)
		}
	}
	var buf bytes.Buffer
	if err := WriteLineTrace(&buf, tr, "stream"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("line trace is not valid JSON")
	}
}

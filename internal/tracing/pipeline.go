package tracing

import (
	"encoding/json"
	"fmt"
	"io"

	"gotaskflow/internal/executor"
)

// WriteLineTrace renders a captured trace from the pipeline's
// point of view: every task span whose Flow matches the given pipeline
// name is placed on the track of its *line* (TaskMeta.Idx) instead of
// the worker that happened to run it, so Perfetto shows per-line
// occupancy directly — one horizontal track per line, spans are the pipe
// invocations of the token currently traversing that line, and gaps are
// the line sitting idle waiting for a join or a deferral. Worker
// identity is preserved in the span args.
//
// The metadata block reports per-line occupancy: the fraction of the
// capture window each line spent inside a pipe invocation (busy µs /
// window µs), the summary number behind the picture.
func WriteLineTrace(w io.Writer, tr executor.Trace, flow string) error {
	// Pair starts with ends per worker, keeping only the pipeline's spans.
	open := map[int32]executor.TraceEvent{}
	var spans []span
	var workerOf []int32
	for _, ev := range tr.Events {
		switch ev.Kind {
		case executor.EvTaskStart:
			open[ev.Worker] = ev
		case executor.EvTaskEnd:
			st, ok := open[ev.Worker]
			if !ok {
				continue
			}
			delete(open, ev.Worker)
			if st.Meta.Flow != flow {
				continue
			}
			spans = append(spans, span{
				start: usec(st.Ts),
				end:   usec(ev.Ts),
				tid:   int(st.Meta.Idx), // line, not worker
				meta:  st.Meta,
			})
			workerOf = append(workerOf, ev.Worker)
		}
	}

	maxLine := -1
	for _, sp := range spans {
		if sp.tid > maxLine {
			maxLine = sp.tid
		}
	}

	out := make([]chromeEvent, 0, len(spans)+maxLine+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "pipeline " + flow},
	})
	for l := 0; l <= maxLine; l++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: l,
			Args: map[string]any{"name": fmt.Sprintf("line %d", l)},
		})
	}

	// Per-line busy time for the occupancy summary.
	var winStart, winEnd float64
	busy := make([]float64, maxLine+1)
	for i, sp := range spans {
		if i == 0 || sp.start < winStart {
			winStart = sp.start
		}
		if sp.end > winEnd {
			winEnd = sp.end
		}
		busy[sp.tid] += sp.end - sp.start
		out = append(out, chromeEvent{
			Name: SpanName(sp.meta),
			Cat:  "pipe",
			Ph:   "X",
			Ts:   sp.start,
			Dur:  sp.end - sp.start,
			Pid:  0,
			Tid:  sp.tid,
			Args: map[string]any{
				"worker": workerOf[i],
				"gen":    sp.meta.Gen,
			},
		})
	}

	occupancy := map[string]any{}
	if window := winEnd - winStart; window > 0 {
		for l := 0; l <= maxLine; l++ {
			occupancy[fmt.Sprintf("line%d", l)] = busy[l] / window
		}
	}
	doc := chromeTrace{TraceEvents: out, Metadata: map[string]any{
		"pipeline":      flow,
		"lines":         maxLine + 1,
		"spans":         len(spans),
		"occupancy":     occupancy,
		"droppedEvents": tr.Dropped,
		"totalEvents":   len(tr.Events),
	}}
	return json.NewEncoder(w).Encode(doc)
}

// LineOccupancy computes each line's busy fraction for the named
// pipeline flow from a captured trace, without rendering JSON — the
// programmatic face of WriteLineTrace's metadata, for tests and drivers
// that want the numbers. The result has one entry per line index up to
// the highest line observed; pipelines with no matching spans return an
// empty slice.
func LineOccupancy(tr executor.Trace, flow string) []float64 {
	open := map[int32]executor.TraceEvent{}
	type iv struct {
		line       int
		start, end float64
	}
	var ivs []iv
	maxLine := -1
	for _, ev := range tr.Events {
		switch ev.Kind {
		case executor.EvTaskStart:
			open[ev.Worker] = ev
		case executor.EvTaskEnd:
			st, ok := open[ev.Worker]
			if !ok {
				continue
			}
			delete(open, ev.Worker)
			if st.Meta.Flow != flow {
				continue
			}
			l := int(st.Meta.Idx)
			ivs = append(ivs, iv{l, usec(st.Ts), usec(ev.Ts)})
			if l > maxLine {
				maxLine = l
			}
		}
	}
	if maxLine < 0 {
		return nil
	}
	var winStart, winEnd float64
	busy := make([]float64, maxLine+1)
	for i, s := range ivs {
		if i == 0 || s.start < winStart {
			winStart = s.start
		}
		if s.end > winEnd {
			winEnd = s.end
		}
		busy[s.line] += s.end - s.start
	}
	if window := winEnd - winStart; window > 0 {
		for l := range busy {
			busy[l] /= window
		}
	}
	return busy
}

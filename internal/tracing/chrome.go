package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gotaskflow/internal/executor"
)

// chromeEvent is the trace-event wire format used for the full event
// stream: "X" complete spans, "i" instants, "s"/"f" flow arrows and "M"
// metadata. Perfetto and chrome://tracing both accept the object form
// {"traceEvents": [...]}.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since capture epoch
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope ("t")
	BP   string         `json:"bp,omitempty"` // flow binding point ("e")
	ID   uint64         `json:"id,omitempty"` // flow arrow id
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// tidOf maps a trace worker index to a Chrome thread id. Workers keep
// their index; the external ring (Worker = -1) renders as one extra
// thread after the workers.
func tidOf(worker int32, workers int) int {
	if worker < 0 {
		return workers
	}
	return int(worker)
}

func usec(ts interface{ Nanoseconds() int64 }) float64 {
	return float64(ts.Nanoseconds()) / 1e3
}

// span is one matched task execution reconstructed from an
// EvTaskStart/EvTaskEnd pair on a single worker.
type span struct {
	start, end float64
	tid        int
	meta       executor.TaskMeta
}

// WriteTrace renders a captured executor.Trace as Chrome trace-event JSON:
//
//   - one named "X" span per task execution (EvTaskStart/EvTaskEnd pair),
//     on the worker thread that ran it;
//   - one "i" instant (thread scope) per scheduler lifecycle event —
//     steal, park/unpark, wake, injection traffic, retry, skip/cancel,
//     subflow spawn/join — named by EventKind.String();
//   - an "s"→"f" flow arrow per dependency release (EvDepRelease),
//     drawn from inside the finishing task's span to the start of the
//     span it released, so Perfetto renders the graph's actual edges
//     (and hence the critical path) across worker timelines;
//   - "M" metadata naming the process and per-worker threads.
//
// The output is the {"traceEvents": [...]} object form; save it as .json
// and open it at https://ui.perfetto.dev (or chrome://tracing).
func WriteTrace(w io.Writer, tr executor.Trace) error {
	workers := tr.Workers
	out := make([]chromeEvent, 0, len(tr.Events)+workers+2)

	// Process/thread naming metadata.
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "gotaskflow"},
	})
	for i := 0; i < workers; i++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", i)},
		})
	}
	out = append(out, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: workers,
		Args: map[string]any{"name": "external"},
	})

	// Pair starts with ends per worker. A worker executes one task at a
	// time and its ring preserves program order, so the next EvTaskEnd on
	// a worker closes that worker's open EvTaskStart. Unclosed starts
	// (capture stopped mid-task) are dropped.
	open := map[int32]executor.TraceEvent{}
	var spans []span
	spansByID := map[uint64][]int{} // task ID -> indices into spans
	for _, ev := range tr.Events {
		switch ev.Kind {
		case executor.EvTaskStart:
			open[ev.Worker] = ev
		case executor.EvTaskEnd:
			st, ok := open[ev.Worker]
			if !ok {
				continue
			}
			delete(open, ev.Worker)
			spans = append(spans, span{
				start: usec(st.Ts),
				end:   usec(ev.Ts),
				tid:   tidOf(ev.Worker, workers),
				meta:  st.Meta,
			})
			if id := st.Meta.ID; id != 0 {
				spansByID[id] = append(spansByID[id], len(spans)-1)
			}
		}
	}
	for _, ids := range spansByID {
		sort.Slice(ids, func(i, j int) bool { return spans[ids[i]].start < spans[ids[j]].start })
	}

	for _, sp := range spans {
		args := map[string]any{}
		if sp.meta.Flow != "" {
			args["taskflow"] = sp.meta.Flow
		}
		if sp.meta.Gen != 0 {
			args["gen"] = sp.meta.Gen
		}
		out = append(out, chromeEvent{
			Name: SpanName(sp.meta),
			Cat:  "task",
			Ph:   "X",
			Ts:   sp.start,
			Dur:  sp.end - sp.start,
			Pid:  0,
			Tid:  sp.tid,
			Args: args,
		})
	}

	// Scheduler instants and dependency flow arrows.
	var flowID uint64
	for _, ev := range tr.Events {
		switch ev.Kind {
		case executor.EvTaskStart, executor.EvTaskEnd:
			continue
		case executor.EvDepRelease:
			// The release happens inside the finishing task's span,
			// strictly before the released task can start; bind the arrow
			// to the first span of the released ID at or after the
			// release instant.
			dst, ok := firstSpanAtOrAfter(spans, spansByID[ev.Arg], usec(ev.Ts))
			if !ok {
				continue
			}
			flowID++
			out = append(out,
				chromeEvent{
					Name: "dep", Cat: "dep", Ph: "s",
					Ts: usec(ev.Ts), Pid: 0,
					Tid: tidOf(ev.Worker, workers),
					ID:  flowID,
					Args: map[string]any{
						"from": SpanName(ev.Meta),
						"to":   SpanName(spans[dst].meta),
					},
				},
				chromeEvent{
					Name: "dep", Cat: "dep", Ph: "f", BP: "e",
					Ts: spans[dst].start, Pid: 0,
					Tid: spans[dst].tid,
					ID:  flowID,
				},
			)
		default:
			args := map[string]any{"arg": ev.Arg}
			switch ev.Kind {
			case executor.EvInjectPush, executor.EvInjectDrain:
				// The packed arg carries shard and count (see
				// executor.InjectArg); decode so Perfetto shows which shard
				// a push landed on and which shard a drain emptied.
				args["arg"] = executor.InjectArgCount(ev.Arg)
				args["shard"] = executor.InjectArgShard(ev.Arg)
			case executor.EvPark, executor.EvUnpark:
				// The arg is the worker's eventcount park-cycle epoch:
				// matching epochs pair a park with the unpark that resolved
				// it.
				args["epoch"] = ev.Arg
			}
			if ev.Meta.ID != 0 || ev.Meta.Name != "" {
				args["task"] = SpanName(ev.Meta)
			}
			if ev.Meta.Flow != "" {
				args["taskflow"] = ev.Meta.Flow
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(),
				Cat:  "sched",
				Ph:   "i",
				Ts:   usec(ev.Ts),
				Pid:  0,
				Tid:  tidOf(ev.Worker, workers),
				S:    "t",
				Args: args,
			})
		}
	}

	// droppedEvents and totalEvents are always present so dump validators
	// (cmd/tracecheck -flight) can check the accounting: a wrapped flight
	// ring legitimately reports large drop counts, and their absence is
	// indistinguishable from zero otherwise.
	doc := chromeTrace{TraceEvents: out, Metadata: map[string]any{
		"droppedEvents": tr.Dropped,
		"totalEvents":   len(tr.Events),
	}}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// firstSpanAtOrAfter returns the index (into spans) of the first candidate
// span starting at or after ts. Candidates are pre-sorted by start time.
func firstSpanAtOrAfter(spans []span, candidates []int, ts float64) (int, bool) {
	i := sort.Search(len(candidates), func(i int) bool {
		return spans[candidates[i]].start >= ts
	})
	if i == len(candidates) {
		return 0, false
	}
	return candidates[i], true
}

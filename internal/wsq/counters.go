package wsq

import "sync/atomic"

// Counters aggregates the lifetime queue activity of one Deque. A scheduler
// that wants per-worker queue metrics allocates one Counters per deque
// (padded against false sharing if they live in an array) and attaches it
// with SetCounters before the deque is used.
//
// All fields are atomic so any goroutine may read a consistent-enough
// snapshot while the deque is in use. Pushes, Pops, Grows and MaxDepth are
// written only by the owner goroutine; Steals is written by thieves.
//
// Conservation law: once the deque is quiescent (owner stopped, deque
// drained), Pushes == Pops + Steals — every item that entered the deque
// left it exactly once, through the bottom or through the top. The
// property tests in internal/core assert this end to end.
type Counters struct {
	// Pushes counts items added by the owner (Push and PushBatch items).
	Pushes atomic.Uint64
	// Pops counts items removed by the owner. A bottom pop that loses the
	// last-item CAS race to a thief is not a pop — the thief got the item
	// and counts it as a steal.
	Pops atomic.Uint64
	// Steals counts items removed by thieves (successful Steal calls).
	Steals atomic.Uint64
	// Grows counts ring reallocations.
	Grows atomic.Uint64
	// MaxDepth is the high watermark of items resident in the deque,
	// maintained at push time (a sampled queue-depth gauge pairs with it:
	// see Deque.Len).
	MaxDepth atomic.Uint64
}

// SetCounters attaches c to the deque; subsequent operations update it.
// Pass nil to detach. Must be called before the deque is shared with
// thieves (typically right after New); attaching to a live deque is a data
// race. When no counters are attached the accounting cost is one nil check
// per operation.
func (d *Deque[T]) SetCounters(c *Counters) { d.ctr = c }

// Counters returns the attached counters (nil when detached).
func (d *Deque[T]) Counters() *Counters { return d.ctr }

// noteDepth raises the MaxDepth watermark to depth. Owner only, so a plain
// load-compare-store is enough: no other writer exists.
func (c *Counters) noteDepth(depth int64) {
	if depth > 0 && uint64(depth) > c.MaxDepth.Load() {
		c.MaxDepth.Store(uint64(depth))
	}
}

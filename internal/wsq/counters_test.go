package wsq

import (
	"sync"
	"testing"
)

func TestCountersSequentialAccounting(t *testing.T) {
	d := New[int](4)
	var c Counters
	d.SetCounters(&c)
	if d.Counters() != &c {
		t.Fatal("Counters() did not return the attached block")
	}
	items := ints(100)
	for _, p := range items[:50] {
		d.Push(p)
	}
	d.PushBatch(items[50:])
	if got := c.Pushes.Load(); got != 100 {
		t.Fatalf("Pushes = %d, want 100", got)
	}
	if got := c.MaxDepth.Load(); got != 100 {
		t.Fatalf("MaxDepth = %d, want 100", got)
	}
	if c.Grows.Load() == 0 {
		t.Fatal("100 items into a 64-slot ring recorded no growth")
	}
	for i := 0; i < 30; i++ {
		if _, ok := d.Pop(); !ok {
			t.Fatal("unexpected empty pop")
		}
	}
	for i := 0; i < 70; i++ {
		if _, ok := d.Steal(); !ok {
			t.Fatal("unexpected failed steal")
		}
	}
	if got := c.Pops.Load(); got != 30 {
		t.Fatalf("Pops = %d, want 30", got)
	}
	if got := c.Steals.Load(); got != 70 {
		t.Fatalf("Steals = %d, want 70", got)
	}
	if c.Pushes.Load() != c.Pops.Load()+c.Steals.Load() {
		t.Fatal("conservation law violated at quiescence")
	}
	// Empty pops and failed steals count nothing.
	d.Pop()
	d.Steal()
	if c.Pops.Load() != 30 || c.Steals.Load() != 70 {
		t.Fatal("failed operations were counted")
	}
}

// TestCountersConcurrentConservation hammers an owner against thieves and
// checks Pushes == Pops + Steals at quiescence — the law the executor's
// metrics reconciliation builds on. Run under -race in CI.
func TestCountersConcurrentConservation(t *testing.T) {
	d := New[int](64)
	var c Counters
	d.SetCounters(&c)
	const n = 20000
	items := ints(n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := d.Steal(); !ok {
					select {
					case <-stop:
						if d.Empty() {
							return
						}
					default:
					}
				}
			}
		}()
	}
	for i, p := range items {
		d.Push(p)
		if i%3 == 0 {
			d.Pop()
		}
	}
	close(stop)
	wg.Wait()
	if got := c.Pushes.Load(); got != n {
		t.Fatalf("Pushes = %d, want %d", got, n)
	}
	if got := c.Pops.Load() + c.Steals.Load(); got != n {
		t.Fatalf("Pops %d + Steals %d = %d, want %d",
			c.Pops.Load(), c.Steals.Load(), got, n)
	}
}

func TestCountersZeroAllocWhenAttached(t *testing.T) {
	d := New[int](1024)
	var c Counters
	d.SetCounters(&c)
	item := new(int)
	allocs := testing.AllocsPerRun(1000, func() {
		d.Push(item)
		d.Pop()
	})
	if allocs != 0 {
		t.Fatalf("counted Push+Pop allocates %v objects per op, want 0", allocs)
	}
}

package wsq

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 100; i++ {
		d.Push(i)
	}
	for i := 99; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok {
			t.Fatalf("Pop() empty at i=%d", i)
		}
		if v != i {
			t.Fatalf("Pop() = %d, want %d", v, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop() on empty deque returned ok")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 100; i++ {
		d.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := d.Steal()
		if !ok {
			t.Fatalf("Steal() empty at i=%d", i)
		}
		if v != i {
			t.Fatalf("Steal() = %d, want %d", v, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal() on empty deque returned ok")
	}
}

func TestEmptyAndLen(t *testing.T) {
	d := New[string](1)
	if !d.Empty() {
		t.Fatal("new deque not Empty()")
	}
	if d.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", d.Len())
	}
	d.Push("a")
	d.Push("b")
	if d.Empty() {
		t.Fatal("deque with items reports Empty()")
	}
	if d.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", d.Len())
	}
	d.Pop()
	d.Pop()
	if !d.Empty() {
		t.Fatal("drained deque not Empty()")
	}
}

func TestGrowth(t *testing.T) {
	d := New[int](1)
	start := d.Capacity()
	n := start * 8
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Capacity() < n {
		t.Fatalf("Capacity() = %d after %d pushes, want >= %d", d.Capacity(), n, n)
	}
	// Items must survive growth, oldest first when stolen.
	for i := 0; i < n; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal() after growth = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	d := New[int](4)
	next := 0
	expect := []int{}
	for round := 0; round < 50; round++ {
		for i := 0; i < round%7+1; i++ {
			d.Push(next)
			expect = append(expect, next)
			next++
		}
		for i := 0; i < round%3; i++ {
			if len(expect) == 0 {
				break
			}
			v, ok := d.Pop()
			if !ok {
				t.Fatalf("round %d: unexpected empty", round)
			}
			want := expect[len(expect)-1]
			expect = expect[:len(expect)-1]
			if v != want {
				t.Fatalf("round %d: Pop() = %d, want %d", round, v, want)
			}
		}
	}
}

// Property: pushing any sequence and popping it all returns the reverse.
func TestQuickPopReversesPush(t *testing.T) {
	f := func(xs []int64) bool {
		d := New[int64](2)
		for _, x := range xs {
			d.Push(x)
		}
		for i := len(xs) - 1; i >= 0; i-- {
			v, ok := d.Pop()
			if !ok || v != xs[i] {
				return false
			}
		}
		_, ok := d.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any split between owner pops and thief steals consumes each
// pushed item exactly once.
func TestQuickMixedConsumption(t *testing.T) {
	f := func(xs []uint16, popFirst bool) bool {
		d := New[uint16](2)
		for _, x := range xs {
			d.Push(x)
		}
		seen := make(map[int]int) // index in deque order -> count
		// Consume half by steal, half by pop (order depends on popFirst).
		remaining := len(xs)
		for remaining > 0 {
			if popFirst {
				if _, ok := d.Pop(); ok {
					remaining--
				}
			} else {
				if _, ok := d.Steal(); ok {
					remaining--
				}
			}
			popFirst = !popFirst
		}
		_, okP := d.Pop()
		_, okS := d.Steal()
		_ = seen
		return !okP && !okS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Concurrent stress: one owner pushes N items and pops opportunistically,
// several thieves steal; every item must be consumed exactly once.
func TestConcurrentStealExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](64)
	var consumed [n]atomic.Int32
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					consumed[v].Add(1)
					total.Add(1)
				}
				select {
				case <-stop:
					// Drain whatever is left before exiting.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[v].Add(1)
						total.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: push all items, interleaving pops.
	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				consumed[v].Add(1)
				total.Add(1)
			}
		}
	}
	// Owner drains its own remainder.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		consumed[v].Add(1)
		total.Add(1)
	}
	close(stop)
	wg.Wait()
	// One final drain in case a thief CAS-failed the owner's last pop.
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[v].Add(1)
		total.Add(1)
	}

	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

func TestConcurrentStealOnlyExactlyOnce(t *testing.T) {
	const n = 50000
	const thieves = 3
	d := New[int](64)
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	var consumed [n]atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			misses := 0
			for misses < 1000 {
				if v, ok := d.Steal(); ok {
					consumed[v].Add(1)
					total.Add(1)
					misses = 0
				} else {
					misses++
				}
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newRing with non-power-of-two capacity did not panic")
		}
	}()
	newRing[int](3)
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkPushSteal(b *testing.B) {
	d := New[int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Steal()
	}
}

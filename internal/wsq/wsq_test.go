package wsq

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// ints returns stable pointers to the values 0..n-1, the way a scheduler
// owns stable pre-built task objects.
func ints(n int) []*int {
	backing := make([]int, n)
	ptrs := make([]*int, n)
	for i := range backing {
		backing[i] = i
		ptrs[i] = &backing[i]
	}
	return ptrs
}

func TestPushPopLIFO(t *testing.T) {
	d := New[int](4)
	items := ints(100)
	for _, p := range items {
		d.Push(p)
	}
	for i := 99; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok {
			t.Fatalf("Pop() empty at i=%d", i)
		}
		if v != items[i] {
			t.Fatalf("Pop() = %v, want item %d", v, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop() on empty deque returned ok")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[int](4)
	items := ints(100)
	for _, p := range items {
		d.Push(p)
	}
	for i := 0; i < 100; i++ {
		v, ok := d.Steal()
		if !ok {
			t.Fatalf("Steal() empty at i=%d", i)
		}
		if v != items[i] {
			t.Fatalf("Steal() = %v, want item %d", v, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal() on empty deque returned ok")
	}
}

func TestPushBatchOrder(t *testing.T) {
	d := New[int](4)
	items := ints(100)
	d.Push(items[0])
	d.PushBatch(items[1:50])
	d.PushBatch(nil) // no-op
	d.PushBatch(items[50:])
	// Steal sees the oldest first, across batch boundaries.
	for i := 0; i < 100; i++ {
		v, ok := d.Steal()
		if !ok || v != items[i] {
			t.Fatalf("Steal() after PushBatch = (%v,%v), want item %d", v, ok, i)
		}
	}
}

func TestPushBatchPopLIFO(t *testing.T) {
	d := New[int](4)
	items := ints(64)
	d.PushBatch(items)
	for i := 63; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != items[i] {
			t.Fatalf("Pop() after PushBatch = (%v,%v), want item %d", v, ok, i)
		}
	}
}

func TestPushBatchGrowsOnce(t *testing.T) {
	d := New[int](1) // capacity 64
	items := ints(1000)
	d.PushBatch(items)
	if d.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", d.Len())
	}
	if d.Capacity() < 1000 {
		t.Fatalf("Capacity() = %d, want >= 1000", d.Capacity())
	}
	for i := 0; i < 1000; i++ {
		v, ok := d.Steal()
		if !ok || v != items[i] {
			t.Fatalf("Steal() = (%v,%v), want item %d", v, ok, i)
		}
	}
}

func TestEmptyAndLen(t *testing.T) {
	d := New[string](1)
	if !d.Empty() {
		t.Fatal("new deque not Empty()")
	}
	if d.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", d.Len())
	}
	a, b := "a", "b"
	d.Push(&a)
	d.Push(&b)
	if d.Empty() {
		t.Fatal("deque with items reports Empty()")
	}
	if d.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", d.Len())
	}
	d.Pop()
	d.Pop()
	if !d.Empty() {
		t.Fatal("drained deque not Empty()")
	}
}

func TestGrowth(t *testing.T) {
	d := New[int](1)
	start := d.Capacity()
	n := start * 8
	items := ints(n)
	for _, p := range items {
		d.Push(p)
	}
	if d.Capacity() < n {
		t.Fatalf("Capacity() = %d after %d pushes, want >= %d", d.Capacity(), n, n)
	}
	// Items must survive growth, oldest first when stolen.
	for i := 0; i < n; i++ {
		v, ok := d.Steal()
		if !ok || v != items[i] {
			t.Fatalf("Steal() after growth = (%v,%v), want item %d", v, ok, i)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	d := New[int](4)
	items := ints(500)
	next := 0
	expect := []*int{}
	for round := 0; round < 50; round++ {
		for i := 0; i < round%7+1; i++ {
			d.Push(items[next])
			expect = append(expect, items[next])
			next++
		}
		for i := 0; i < round%3; i++ {
			if len(expect) == 0 {
				break
			}
			v, ok := d.Pop()
			if !ok {
				t.Fatalf("round %d: unexpected empty", round)
			}
			want := expect[len(expect)-1]
			expect = expect[:len(expect)-1]
			if v != want {
				t.Fatalf("round %d: Pop() = %v, want %v", round, v, want)
			}
		}
	}
}

// Property: pushing any sequence and popping it all returns the reverse.
func TestQuickPopReversesPush(t *testing.T) {
	f := func(xs []int64) bool {
		d := New[int64](2)
		for i := range xs {
			d.Push(&xs[i])
		}
		for i := len(xs) - 1; i >= 0; i-- {
			v, ok := d.Pop()
			if !ok || v != &xs[i] {
				return false
			}
		}
		_, ok := d.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any split between owner pops and thief steals consumes each
// pushed item exactly once and fully drains the deque.
func TestQuickMixedConsumption(t *testing.T) {
	f := func(xs []uint16, popFirst bool) bool {
		d := New[uint16](2)
		for i := range xs {
			d.Push(&xs[i])
		}
		remaining := len(xs)
		for remaining > 0 {
			if popFirst {
				if _, ok := d.Pop(); ok {
					remaining--
				}
			} else {
				if _, ok := d.Steal(); ok {
					remaining--
				}
			}
			popFirst = !popFirst
		}
		_, okP := d.Pop()
		_, okS := d.Steal()
		return !okP && !okS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Concurrent stress: one owner pushes N items and pops opportunistically,
// several thieves steal; every item must be consumed exactly once.
func TestConcurrentStealExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](64)
	items := ints(n)
	var consumed [n]atomic.Int32
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					consumed[*v].Add(1)
					total.Add(1)
				}
				select {
				case <-stop:
					// Drain whatever is left before exiting.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[*v].Add(1)
						total.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: push all items, interleaving pops.
	for i := 0; i < n; i++ {
		d.Push(items[i])
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				consumed[*v].Add(1)
				total.Add(1)
			}
		}
	}
	// Owner drains its own remainder.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}
	close(stop)
	wg.Wait()
	// One final drain in case a thief CAS-failed the owner's last pop.
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}

	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

// Concurrent stress targeting the batch-publish path: the owner publishes
// work in batches of varying size (interleaving pops) while thieves hammer
// Steal. Every item must still be consumed exactly once. Run with -race to
// check the PushBatch publication ordering.
func TestConcurrentPushBatchSteal(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](64)
	items := ints(n)
	var consumed [n]atomic.Int32
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					consumed[*v].Add(1)
					total.Add(1)
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						consumed[*v].Add(1)
						total.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: publish in batches of 1..17 items, popping a few in between.
	for beg := 0; beg < n; {
		size := beg%17 + 1
		if beg+size > n {
			size = n - beg
		}
		d.PushBatch(items[beg : beg+size])
		beg += size
		if beg%5 == 0 {
			if v, ok := d.Pop(); ok {
				consumed[*v].Add(1)
				total.Add(1)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}

	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

func TestConcurrentStealOnlyExactlyOnce(t *testing.T) {
	const n = 50000
	const thieves = 3
	d := New[int](64)
	items := ints(n)
	for i := 0; i < n; i++ {
		d.Push(items[i])
	}
	var consumed [n]atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			misses := 0
			for misses < 1000 {
				if v, ok := d.Steal(); ok {
					consumed[*v].Add(1)
					total.Add(1)
					misses = 0
				} else {
					misses++
				}
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

func TestStealBatchHalf(t *testing.T) {
	d := New[int](4)
	dst := New[int](4)
	items := ints(8)
	for _, p := range items {
		d.Push(p)
	}
	first, k := d.StealBatch(dst)
	if k != 4 {
		t.Fatalf("StealBatch moved %d items from 8, want 4 (half)", k)
	}
	if first != items[0] {
		t.Fatalf("StealBatch first = %v, want oldest item 0", first)
	}
	if d.Len() != 4 || dst.Len() != 3 {
		t.Fatalf("after StealBatch victim Len=%d dst Len=%d, want 4 and 3", d.Len(), dst.Len())
	}
	// The extras land on dst in victim FIFO order, so dst steals (and the
	// thief's own pops, newest-last) see items 1, 2, 3.
	for i := 1; i <= 3; i++ {
		v, ok := dst.Steal()
		if !ok || v != items[i] {
			t.Fatalf("dst.Steal() = (%v,%v), want item %d", v, ok, i)
		}
	}
	// The victim keeps its own tail, oldest-first from item 4.
	for i := 4; i < 8; i++ {
		v, ok := d.Steal()
		if !ok || v != items[i] {
			t.Fatalf("victim Steal() = (%v,%v), want item %d", v, ok, i)
		}
	}
}

func TestStealBatchSingleItem(t *testing.T) {
	d := New[int](4)
	dst := New[int](4)
	items := ints(1)
	d.Push(items[0])
	first, k := d.StealBatch(dst)
	if k != 1 || first != items[0] {
		t.Fatalf("StealBatch on 1-item deque = (%v,%d), want (item 0, 1)", first, k)
	}
	if !dst.Empty() {
		t.Fatal("dst received items from a single-item batch")
	}
	if !d.Empty() {
		t.Fatal("victim not empty after its only item was stolen")
	}
}

func TestStealBatchEmpty(t *testing.T) {
	d := New[int](4)
	dst := New[int](4)
	if first, k := d.StealBatch(dst); first != nil || k != 0 {
		t.Fatalf("StealBatch on empty deque = (%v,%d), want (nil,0)", first, k)
	}
}

func TestStealBatchCap(t *testing.T) {
	d := New[int](4)
	dst := New[int](4)
	n := MaxStealBatch * 4
	items := ints(n)
	for _, p := range items {
		d.Push(p)
	}
	_, k := d.StealBatch(dst)
	if k != MaxStealBatch {
		t.Fatalf("StealBatch moved %d items from %d, want cap %d", k, n, MaxStealBatch)
	}
	if d.Len() != n-MaxStealBatch {
		t.Fatalf("victim Len = %d, want %d", d.Len(), n-MaxStealBatch)
	}
}

func TestStealBatchOddCount(t *testing.T) {
	// ceil(n/2): 5 visible items yield a 3-item batch.
	d := New[int](4)
	dst := New[int](4)
	for _, p := range ints(5) {
		d.Push(p)
	}
	if _, k := d.StealBatch(dst); k != 3 {
		t.Fatalf("StealBatch moved %d items from 5, want 3", k)
	}
}

func TestStealBatchCounters(t *testing.T) {
	d := New[int](4)
	dst := New[int](4)
	var vc, tc Counters
	d.SetCounters(&vc)
	dst.SetCounters(&tc)
	for _, p := range ints(8) {
		d.Push(p)
	}
	_, k := d.StealBatch(dst)
	if k != 4 {
		t.Fatalf("StealBatch moved %d, want 4", k)
	}
	// All taken items count as steals on the victim; the re-pushed extras
	// count as pushes on the thief, keeping Pushes == Pops + Steals exact
	// per deque once both drain.
	if got := vc.Steals.Load(); got != 4 {
		t.Fatalf("victim Steals = %d, want 4", got)
	}
	if got := tc.Pushes.Load(); got != 3 {
		t.Fatalf("thief Pushes = %d, want 3", got)
	}
	for !dst.Empty() {
		dst.Pop()
	}
	for !d.Empty() {
		d.Pop()
	}
	if vc.Pushes.Load() != vc.Pops.Load()+vc.Steals.Load() {
		t.Fatalf("victim conservation law broken: pushes=%d pops=%d steals=%d",
			vc.Pushes.Load(), vc.Pops.Load(), vc.Steals.Load())
	}
	if tc.Pushes.Load() != tc.Pops.Load()+tc.Steals.Load() {
		t.Fatalf("thief conservation law broken: pushes=%d pops=%d steals=%d",
			tc.Pushes.Load(), tc.Pops.Load(), tc.Steals.Load())
	}
}

// Concurrent stress: thieves use StealBatch into private deques they then
// drain as owners; every item must be consumed exactly once.
func TestConcurrentStealBatchExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](64)
	items := ints(n)
	var consumed [n]atomic.Int32
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := New[int](64)
			drain := func() {
				for {
					v, ok := mine.Pop()
					if !ok {
						return
					}
					consumed[*v].Add(1)
					total.Add(1)
				}
			}
			for {
				if v, k := d.StealBatch(mine); k > 0 {
					consumed[*v].Add(1)
					total.Add(1)
					drain()
				}
				select {
				case <-stop:
					for {
						v, k := d.StealBatch(mine)
						if k == 0 {
							drain()
							return
						}
						consumed[*v].Add(1)
						total.Add(1)
						drain()
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		d.Push(items[i])
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				consumed[*v].Add(1)
				total.Add(1)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		consumed[*v].Add(1)
		total.Add(1)
	}

	if got := total.Load(); got != n {
		t.Fatalf("consumed %d items, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("item %d consumed %d times", i, c)
		}
	}
}

// The StealBatch scratch buffer must stay on the thief's stack: moving a
// batch allocates nothing beyond (amortized) dst ring growth.
func TestStealBatchAllocBound(t *testing.T) {
	d := New[int](1024)
	dst := New[int](1024) // pre-sized: no growth during the measured runs
	items := ints(32)
	allocs := testing.AllocsPerRun(1000, func() {
		d.PushBatch(items)
		for {
			_, k := d.StealBatch(dst)
			if k == 0 {
				break
			}
		}
		for {
			if _, ok := dst.Pop(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("StealBatch allocates %v objects per op, want 0", allocs)
	}
}

func TestNewRingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newRing with non-power-of-two capacity did not panic")
		}
	}()
	newRing[int](3)
}

// Steady-state Push/Pop must not allocate: the deque stores the caller's
// pointer directly, with no boxing layer.
func TestPushPopZeroAlloc(t *testing.T) {
	d := New[int](1024)
	item := new(int)
	allocs := testing.AllocsPerRun(1000, func() {
		d.Push(item)
		d.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Push+Pop allocates %v objects per op, want 0", allocs)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int](1024)
	item := new(int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(item)
		d.Pop()
	}
}

func BenchmarkPushSteal(b *testing.B) {
	d := New[int](1024)
	item := new(int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(item)
		d.Steal()
	}
}

func BenchmarkPushBatchSteal(b *testing.B) {
	d := New[int](1024)
	items := ints(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBatch(items)
		for j := 0; j < 16; j++ {
			d.Steal()
		}
	}
}

func TestGrowHook(t *testing.T) {
	d := New[int](1) // capacity 64
	var caps []int
	d.SetGrowHook(func(newCap int) { caps = append(caps, newCap) })

	items := ints(65) // one past capacity: exactly one growth via Push
	for _, it := range items[:64] {
		d.Push(it)
	}
	if len(caps) != 0 {
		t.Fatalf("hook fired %d times before any growth", len(caps))
	}
	d.Push(items[64])
	if len(caps) != 1 || caps[0] != 128 {
		t.Fatalf("after Push growth caps = %v, want [128]", caps)
	}

	// Batch growth fires once with the final capacity.
	d.PushBatch(ints(1000))
	if len(caps) != 2 || caps[1] < 1065 {
		t.Fatalf("after PushBatch growth caps = %v, want one more entry >= 1065", caps)
	}
	if caps[1] != d.Capacity() {
		t.Fatalf("hook reported %d, Capacity() = %d", caps[1], d.Capacity())
	}

	d.SetGrowHook(nil) // detaching stops callbacks
	for d.Capacity() < 8192 {
		d.PushBatch(ints(int(d.Capacity())))
	}
	if len(caps) != 2 {
		t.Fatalf("detached hook still fired: %v", caps)
	}
}

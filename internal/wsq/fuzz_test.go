package wsq

// FuzzDeque drives the Chase-Lev deque with a fuzzer-chosen operation
// script, twice per input:
//
//  1. sequentially against a model queue — Push appends, Pop must return
//     the newest item (LIFO bottom), Steal the oldest (FIFO top), and
//     StealBatch a ceil(half)-capped prefix of the oldest items in order,
//     with Len agreeing throughout; and
//  2. concurrently, the owner replaying the same script against 0-3
//     stealer goroutines — half of them using StealBatch into private
//     deques they drain as owners — every pushed item must be consumed
//     exactly once, by either the owner or a thief.
//
// Both phases check the counter conservation law at quiescence:
// Pushes == Pops + Steals (with StealBatch counting every item it moved as
// a steal on the victim). The committed corpus lives under
// testdata/fuzz/FuzzDeque; CI runs a -fuzztime smoke on top of the corpus
// replay that plain `go test` performs.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func FuzzDeque(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 1, 2, 0, 1})          // push/pop/steal mix, 2 thieves
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // push-only growth, 0 thieves
	f.Add([]byte{3, 1, 2, 1, 2, 0, 1, 2})          // ops on an often-empty deque
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 3, 1, 3}) // batch steals off a deep deque
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		stealers := int(data[0] % 4)
		script := data[1:]
		if len(script) > 512 {
			script = script[:512]
		}
		fuzzSequentialModel(t, script)
		fuzzConcurrentExactlyOnce(t, stealers, script)
	})
}

// fuzzSequentialModel replays the script single-threaded against a slice
// model of the deque.
func fuzzSequentialModel(t *testing.T, script []byte) {
	d := New[int](2) // tiny capacity so growth paths get exercised
	var c Counters
	d.SetCounters(&c)
	dst := New[int](2) // StealBatch target, drained after every batch
	var model []int
	next, pushed, consumed := 0, uint64(0), uint64(0)
	for _, b := range script {
		switch b % 4 {
		case 0:
			v := new(int)
			*v = next
			next++
			d.Push(v)
			model = append(model, *v)
			pushed++
		case 1:
			got, ok := d.Pop()
			if len(model) == 0 {
				if ok {
					t.Fatalf("Pop returned %d from an empty deque", *got)
				}
				continue
			}
			want := model[len(model)-1]
			if !ok || *got != want {
				t.Fatalf("Pop = (%v, %v), want (%d, true)", got, ok, want)
			}
			model = model[:len(model)-1]
			consumed++
		case 2:
			got, ok := d.Steal()
			if len(model) == 0 {
				if ok {
					t.Fatalf("Steal returned %d from an empty deque", *got)
				}
				continue
			}
			want := model[0]
			if !ok || *got != want {
				t.Fatalf("Steal = (%v, %v), want (%d, true)", got, ok, want)
			}
			model = model[1:]
			consumed++
		case 3:
			// With no concurrency the batch must take exactly
			// min(ceil(len/2), MaxStealBatch) items: the oldest first as the
			// return value, the rest onto dst in victim order.
			first, k := d.StealBatch(dst)
			if len(model) == 0 {
				if k != 0 {
					t.Fatalf("StealBatch took %d items from an empty deque", k)
				}
				continue
			}
			want := (len(model) + 1) / 2
			if want > MaxStealBatch {
				want = MaxStealBatch
			}
			if k != want {
				t.Fatalf("StealBatch took %d of %d items, want %d", k, len(model), want)
			}
			if *first != model[0] {
				t.Fatalf("StealBatch first = %d, want oldest %d", *first, model[0])
			}
			for i := 1; i < k; i++ {
				got, ok := dst.Steal()
				if !ok || *got != model[i] {
					t.Fatalf("dst item %d = (%v, %v), want (%d, true)", i, got, ok, model[i])
				}
			}
			if !dst.Empty() {
				t.Fatalf("dst kept items beyond the %d-item batch", k)
			}
			model = model[k:]
			consumed += uint64(k)
		}
		if d.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", d.Len(), len(model))
		}
	}
	if got := c.Pushes.Load(); got != pushed {
		t.Fatalf("Pushes = %d, want %d", got, pushed)
	}
	if got := c.Pops.Load() + c.Steals.Load(); got != consumed {
		t.Fatalf("Pops+Steals = %d, want %d", got, consumed)
	}
}

// fuzzConcurrentExactlyOnce replays the script's pushes from the owner
// (popping on some bytes) while stealer goroutines drain concurrently —
// even-numbered thieves batch-steal into a private deque they own — then
// asserts exactly-once consumption and counter conservation.
func fuzzConcurrentExactlyOnce(t *testing.T, stealers int, script []byte) {
	d := New[int](2)
	var c Counters
	d.SetCounters(&c)
	n := len(script)
	items := make([]int, n)
	seen := make([]atomic.Int32, n)
	consume := func(p *int, ok bool) {
		if ok {
			seen[*p].Add(1)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for th := 0; th < stealers; th++ {
		wg.Add(1)
		go func(batch bool) {
			defer wg.Done()
			mine := New[int](2)
			drain := func() {
				for {
					p, ok := mine.Pop()
					if !ok {
						return
					}
					consume(p, ok)
				}
			}
			for {
				var ok bool
				if batch {
					p, k := d.StealBatch(mine)
					ok = k > 0
					if ok {
						consume(p, true)
						drain()
					}
				} else {
					var p *int
					p, ok = d.Steal()
					consume(p, ok)
				}
				if !ok {
					select {
					case <-stop:
						if d.Empty() {
							drain()
							return
						}
					default:
					}
				}
			}
		}(th%2 == 0)
	}
	for i, b := range script {
		items[i] = i
		d.Push(&items[i])
		if b%4 == 3 {
			consume(d.Pop())
		}
	}
	// Owner drains what the thieves have not taken, then releases them.
	for {
		p, ok := d.Pop()
		if !ok {
			if d.Empty() {
				break
			}
			continue // lost the last-item race to a thief mid-flight
		}
		consume(p, ok)
	}
	close(stop)
	wg.Wait()
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, got)
		}
	}
	if got := c.Pushes.Load(); got != uint64(n) {
		t.Fatalf("Pushes = %d, want %d", got, n)
	}
	if got := c.Pops.Load() + c.Steals.Load(); got != uint64(n) {
		t.Fatalf("Pops %d + Steals %d = %d, want %d",
			c.Pops.Load(), c.Steals.Load(), got, n)
	}
}

package wsq

// FuzzDeque drives the Chase-Lev deque with a fuzzer-chosen operation
// script, twice per input:
//
//  1. sequentially against a model queue — Push appends, Pop must return
//     the newest item (LIFO bottom), Steal the oldest (FIFO top), with
//     Len agreeing throughout; and
//  2. concurrently, the owner replaying the same script against 0-3
//     stealer goroutines — every pushed item must be consumed exactly
//     once, by either the owner or a thief.
//
// Both phases check the counter conservation law at quiescence:
// Pushes == Pops + Steals. The committed corpus lives under
// testdata/fuzz/FuzzDeque; CI runs a -fuzztime smoke on top of the
// corpus replay that plain `go test` performs.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func FuzzDeque(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 1, 2, 0, 1})          // push/pop/steal mix, 2 thieves
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // push-only growth, 0 thieves
	f.Add([]byte{3, 1, 2, 1, 2, 0, 1, 2})          // ops on an often-empty deque
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		stealers := int(data[0] % 4)
		script := data[1:]
		if len(script) > 512 {
			script = script[:512]
		}
		fuzzSequentialModel(t, script)
		fuzzConcurrentExactlyOnce(t, stealers, script)
	})
}

// fuzzSequentialModel replays the script single-threaded against a slice
// model of the deque.
func fuzzSequentialModel(t *testing.T, script []byte) {
	d := New[int](2) // tiny capacity so growth paths get exercised
	var c Counters
	d.SetCounters(&c)
	var model []int
	next, pushed, consumed := 0, uint64(0), uint64(0)
	for _, b := range script {
		switch b % 3 {
		case 0:
			v := new(int)
			*v = next
			next++
			d.Push(v)
			model = append(model, *v)
			pushed++
		case 1:
			got, ok := d.Pop()
			if len(model) == 0 {
				if ok {
					t.Fatalf("Pop returned %d from an empty deque", *got)
				}
				continue
			}
			want := model[len(model)-1]
			if !ok || *got != want {
				t.Fatalf("Pop = (%v, %v), want (%d, true)", got, ok, want)
			}
			model = model[:len(model)-1]
			consumed++
		case 2:
			got, ok := d.Steal()
			if len(model) == 0 {
				if ok {
					t.Fatalf("Steal returned %d from an empty deque", *got)
				}
				continue
			}
			want := model[0]
			if !ok || *got != want {
				t.Fatalf("Steal = (%v, %v), want (%d, true)", got, ok, want)
			}
			model = model[1:]
			consumed++
		}
		if d.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", d.Len(), len(model))
		}
	}
	if got := c.Pushes.Load(); got != pushed {
		t.Fatalf("Pushes = %d, want %d", got, pushed)
	}
	if got := c.Pops.Load() + c.Steals.Load(); got != consumed {
		t.Fatalf("Pops+Steals = %d, want %d", got, consumed)
	}
}

// fuzzConcurrentExactlyOnce replays the script's pushes from the owner
// (popping on some bytes) while stealer goroutines drain concurrently,
// then asserts exactly-once consumption and counter conservation.
func fuzzConcurrentExactlyOnce(t *testing.T, stealers int, script []byte) {
	d := New[int](2)
	var c Counters
	d.SetCounters(&c)
	n := len(script)
	items := make([]int, n)
	seen := make([]atomic.Int32, n)
	consume := func(p *int, ok bool) {
		if ok {
			seen[*p].Add(1)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for th := 0; th < stealers; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p, ok := d.Steal()
				consume(p, ok)
				if !ok {
					select {
					case <-stop:
						if d.Empty() {
							return
						}
					default:
					}
				}
			}
		}()
	}
	for i, b := range script {
		items[i] = i
		d.Push(&items[i])
		if b%4 == 3 {
			consume(d.Pop())
		}
	}
	// Owner drains what the thieves have not taken, then releases them.
	for {
		p, ok := d.Pop()
		if !ok {
			if d.Empty() {
				break
			}
			continue // lost the last-item race to a thief mid-flight
		}
		consume(p, ok)
	}
	close(stop)
	wg.Wait()
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, got)
		}
	}
	if got := c.Pushes.Load(); got != uint64(n) {
		t.Fatalf("Pushes = %d, want %d", got, n)
	}
	if got := c.Pops.Load() + c.Steals.Load(); got != uint64(n) {
		t.Fatalf("Pops %d + Steals %d = %d, want %d",
			c.Pops.Load(), c.Steals.Load(), got, n)
	}
}

// Package wsq provides an unbounded Chase-Lev work-stealing deque.
//
// The deque has a single owner goroutine that pushes and pops items at the
// bottom, while any number of thief goroutines concurrently steal items from
// the top. It is the queue primitive underneath the work-stealing executor
// (paper Section III-E, Algorithm 1): each worker owns one deque, runs in
// LIFO order for locality, and is robbed in FIFO order for load balance.
//
// Elements are pointers: a Deque[T] stores *T values directly in its slots,
// so pushing never boxes or copies the item. Schedulers push pointers to
// pre-built, long-lived task objects (intrusive tasks), which keeps the
// steady-state dispatch path allocation-free. Pushing a nil pointer is not
// allowed.
//
// The implementation follows Chase and Lev, "Dynamic Circular Work-Stealing
// Deque" (SPAA 2005), with the memory-ordering fixes from Lê et al.,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013),
// mapped onto Go's sequentially-consistent sync/atomic operations.
package wsq

import (
	"sync/atomic"
)

// ring is a fixed-capacity circular array. Capacity is always a power of two
// so index wrapping is a mask operation.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("wsq: ring capacity must be a positive power of two")
	}
	return &ring[T]{
		mask: capacity - 1,
		buf:  make([]atomic.Pointer[T], capacity),
	}
}

func (r *ring[T]) cap() int64 { return r.mask + 1 }

func (r *ring[T]) store(i int64, v *T) { r.buf[i&r.mask].Store(v) }

func (r *ring[T]) load(i int64) *T { return r.buf[i&r.mask].Load() }

// grow returns a ring of at least twice the capacity (enough to also fit
// need extra items) holding the items in [top, bottom).
func (r *ring[T]) grow(bottom, top, need int64) *ring[T] {
	c := 2 * r.cap()
	for c-(bottom-top) < need {
		c *= 2
	}
	bigger := newRing[T](c)
	for i := top; i < bottom; i++ {
		bigger.store(i, r.load(i))
	}
	return bigger
}

// Deque is an unbounded single-owner multi-thief work-stealing deque of
// pointers. The zero value is not usable; construct with New.
//
// Push, PushBatch and Pop must only be called by the owner goroutine. Steal
// may be called by any goroutine. Empty and Len may be called by any
// goroutine but are inherently racy snapshots.
type Deque[T any] struct {
	bottom atomic.Int64
	top    atomic.Int64
	array  atomic.Pointer[ring[T]]

	// ctr, when non-nil, receives per-operation accounting (see Counters).
	// Attached once before use; the disabled cost is one nil check per
	// operation.
	ctr *Counters

	// growHook, when non-nil, is called by the owner after a ring growth
	// with the new capacity. Same attachment contract as ctr.
	growHook func(newCap int)
}

// SetGrowHook attaches fn, called by the owner goroutine after each ring
// growth with the new capacity. Pass nil to detach. Must be set before the
// deque is shared with thieves (attaching to a live deque is a data race);
// the disabled cost is one nil check per growth.
func (d *Deque[T]) SetGrowHook(fn func(newCap int)) { d.growHook = fn }

// New creates an empty deque with at least the given initial capacity
// (rounded up to a power of two, minimum 64).
func New[T any](capacity int) *Deque[T] {
	c := int64(64)
	for c < int64(capacity) {
		c <<= 1
	}
	d := &Deque[T]{}
	d.array.Store(newRing[T](c))
	return d
}

// Push adds an item at the bottom of the deque. Owner only. The pointer is
// stored as-is — no boxing, no allocation (amortized; growth reallocates the
// ring).
func (d *Deque[T]) Push(item *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t > a.cap()-1 {
		a = a.grow(b, t, 1)
		d.array.Store(a)
		if c := d.ctr; c != nil {
			c.Grows.Add(1)
		}
		if h := d.growHook; h != nil {
			h(int(a.cap()))
		}
	}
	a.store(b, item)
	d.bottom.Store(b + 1)
	if c := d.ctr; c != nil {
		c.Pushes.Add(1)
		c.noteDepth(b + 1 - t)
	}
}

// PushBatch adds all items at the bottom of the deque with a single bottom
// update and at most one ring growth. Owner only. Thieves observe the whole
// batch at once, so a producer making many tasks ready can publish them with
// one release instead of len(items) individual pushes.
func (d *Deque[T]) PushBatch(items []*T) {
	n := int64(len(items))
	if n == 0 {
		return
	}
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t+n > a.cap() {
		a = a.grow(b, t, n)
		d.array.Store(a)
		if c := d.ctr; c != nil {
			c.Grows.Add(1)
		}
		if h := d.growHook; h != nil {
			h(int(a.cap()))
		}
	}
	for i, item := range items {
		a.store(b+int64(i), item)
	}
	d.bottom.Store(b + n)
	if c := d.ctr; c != nil {
		c.Pushes.Add(uint64(n))
		c.noteDepth(b + n - t)
	}
}

// Pop removes and returns the most recently pushed item. Owner only.
// The second result reports whether an item was obtained.
func (d *Deque[T]) Pop() (*T, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bottom.
		d.bottom.Store(b + 1)
		return nil, false
	}
	item := a.load(b)
	if t == b {
		// Last item: race against thieves via CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			// A thief got it first.
			d.bottom.Store(b + 1)
			return nil, false
		}
		d.bottom.Store(b + 1)
		if c := d.ctr; c != nil {
			c.Pops.Add(1)
		}
		return item, true
	}
	if c := d.ctr; c != nil {
		c.Pops.Add(1)
	}
	return item, true
}

// Steal removes and returns the oldest item in the deque. Any goroutine.
// The second result reports whether an item was obtained; contention with
// the owner or another thief yields (nil, false), which callers should
// treat as "retry elsewhere" rather than "empty".
func (d *Deque[T]) Steal() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	item := a.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	if c := d.ctr; c != nil {
		c.Steals.Add(1)
	}
	return item, true
}

// MaxStealBatch bounds how many items one StealBatch call can move: half
// of a deep deque is still grabbed in chunks of at most this many, keeping
// a thief's time-to-first-task bounded and its scratch space on the stack.
const MaxStealBatch = 16

// StealBatch steals up to half of the victim's visible items — capped at
// MaxStealBatch — returning the first for immediate execution and pushing
// the rest onto dst, the thief's own deque, as one batch publication. It
// returns the number of items moved; 0 means the deque looked empty or the
// first grab lost a race, which callers should treat as "retry elsewhere"
// exactly like Steal.
//
// Each item is taken by its own CAS on top, following the single-Steal
// protocol verbatim: a one-CAS half-range grab is unsound under Chase-Lev,
// because the owner pops interior items without touching top (only the
// last-item pop synchronizes through it), so a thief that claimed [t, t+k)
// with one CAS could re-take an item the owner already executed. The batch
// still amortizes what actually costs: one victim selection, one traversal
// of the steal loop, and one deque publication for k tasks instead of k
// full sweeps.
//
// dst must be owned by the calling goroutine and must not be d.
func (d *Deque[T]) StealBatch(dst *Deque[T]) (*T, int) {
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return nil, 0
	}
	grab := (n + 1) / 2
	if grab > MaxStealBatch {
		grab = MaxStealBatch
	}
	var scratch [MaxStealBatch]*T
	taken := int64(0)
	for taken < grab {
		if taken > 0 {
			// Re-check visibility: the owner may have popped the tail of
			// the range since the first grab.
			if b = d.bottom.Load(); t >= b {
				break
			}
		}
		a := d.array.Load()
		item := a.load(t)
		if !d.top.CompareAndSwap(t, t+1) {
			break
		}
		scratch[taken] = item
		taken++
		t++
	}
	if taken == 0 {
		return nil, 0
	}
	if c := d.ctr; c != nil {
		c.Steals.Add(uint64(taken))
	}
	if taken > 1 {
		dst.PushBatch(scratch[1:taken])
	}
	return scratch[0], int(taken)
}

// Empty reports whether the deque appears empty at this instant.
func (d *Deque[T]) Empty() bool {
	return d.bottom.Load() <= d.top.Load()
}

// Len returns the apparent number of items at this instant. It may be
// transiently negative under owner/thief races; callers use it only as a
// load-balancing hint, so it is clamped at zero.
func (d *Deque[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Capacity returns the current capacity of the backing ring.
func (d *Deque[T]) Capacity() int {
	return int(d.array.Load().cap())
}

// Package wavefront implements the wavefront-computing micro-benchmark of
// the Cpp-Taskflow paper (Section IV-A, Figure 6), modified from the
// official TBB blog example: a 2D matrix is partitioned into identical
// square blocks, each block is a task performing a nominal constant-time
// operation, and dependencies propagate monotonically from the top-left
// block to the bottom-right block — each task precedes one task to the
// right and another below. The resulting task dependency graph is regular.
//
// Four backends build and execute the same computation: Taskflow (this
// repository's core library), FlowGraph (the TBB model), OMP (the OpenMP
// task-depend model), and Sequential. All return the same checksum, which
// tests verify; benchmarks time the whole call, matching the paper's
// measurement of ramp-up + construction + execution + clean-up.
package wavefront

import (
	"fmt"
	"io"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/flowgraph"
	"gotaskflow/internal/omp"
)

// Spin is the default nominal per-task operation cost (iterations of an
// integer LCG), calibrated to be small but not optimizable away.
const Spin = 64

// kernel is the nominal block operation: fold the two upstream values and
// spin a deterministic LCG for the given number of rounds.
func kernel(left, up uint64, spin int) uint64 {
	x := left*31 + up*17 + 1
	for i := 0; i < spin; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	return x
}

// grid allocates the (m+1)×(m+1) value grid with unit borders so block
// (0,0) has well-defined inputs. Rows are windows of one flat backing
// array: two allocations regardless of m.
func grid(m int) [][]uint64 {
	g := make([][]uint64, m+1)
	flat := make([]uint64, (m+1)*(m+1))
	for i := range g {
		g[i], flat = flat[:m+1:m+1], flat[m+1:]
	}
	for i := 0; i <= m; i++ {
		g[i][0] = 1
		g[0][i] = 1
	}
	return g
}

// NumTasks returns the task count of an m×m wavefront.
func NumTasks(m int) int { return m * m }

// Sequential computes the wavefront serially and returns the checksum —
// the reference result for all parallel backends.
func Sequential(m, spin int) uint64 {
	g := grid(m)
	for i := 1; i <= m; i++ {
		for j := 1; j <= m; j++ {
			g[i][j] = kernel(g[i][j-1], g[i-1][j], spin)
		}
	}
	return g[m][m]
}

// Taskflow runs the m×m wavefront on the core taskflow library with the
// given worker count, including graph construction and executor teardown.
// Task failures (panics converted by the runtime) are returned, not
// re-panicked.
func Taskflow(m, spin, workers int) (uint64, error) {
	tf := core.New(workers)
	defer tf.Close()
	return taskflowOn(tf, m, spin)
}

// TaskflowShared runs the wavefront on an existing executor — used by the
// scheduler ablation benchmarks, which compare executors built with
// different Algorithm-1 heuristics.
func TaskflowShared(m, spin int, e *executor.Executor) (uint64, error) {
	tf := core.NewShared(e)
	return taskflowOn(tf, m, spin)
}

func taskflowOn(tf *core.Taskflow, m, spin int) (uint64, error) {
	g := Build(tf, m, spin)
	if err := tf.WaitForAll(); err != nil {
		return 0, err
	}
	return g[m][m], nil
}

// Build emplaces the m×m wavefront task graph on tf and returns
// the value grid the tasks write into.
func Build(tf *core.Taskflow, m, spin int) [][]uint64 {
	g := grid(m)
	tasks := make([][]core.Task, m)
	for i := 0; i < m; i++ {
		tasks[i] = make([]core.Task, m)
		for j := 0; j < m; j++ {
			i, j := i+1, j+1
			tasks[i-1][j-1] = tf.Emplace1(func() {
				g[i][j] = kernel(g[i][j-1], g[i-1][j], spin)
			})
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i+1 < m {
				tasks[i][j].Precede(tasks[i+1][j])
			}
			if j+1 < m {
				tasks[i][j].Precede(tasks[i][j+1])
			}
		}
	}
	return g
}

// TaskflowLevelized runs the m×m wavefront as a levelized chain of
// partitioned parallel loops — one ParallelForIndex per anti-diagonal,
// every block of a diagonal being independent — instead of one task per
// block. With a Dynamic or Guided partitioner the whole wavefront costs
// O(m·workers) graph nodes instead of m², trading the fine-grained
// dependency structure for run-time range claiming; the checksum is
// identical.
func TaskflowLevelized(m, spin, workers int, p core.Partitioner) (uint64, error) {
	tf := core.New(workers)
	defer tf.Close()
	g := BuildLevelized(tf, m, spin, p)
	if err := tf.WaitForAll(); err != nil {
		return 0, err
	}
	return g[m][m], nil
}

// BuildLevelized emplaces the levelized wavefront — a chain of partitioned
// anti-diagonal loops — on tf and returns the value grid.
func BuildLevelized(tf *core.Taskflow, m, spin int, p core.Partitioner) [][]uint64 {
	g := grid(m)
	first := true
	var prevT core.Task
	for d := 2; d <= 2*m; d++ {
		lo, hi := 1, m
		if d-m > lo {
			lo = d - m
		}
		if d-1 < hi {
			hi = d - 1
		}
		d := d
		S, T := core.ParallelForIndex(tf, lo, hi+1, 1, func(i int) {
			j := d - i
			g[i][j] = kernel(g[i][j-1], g[i-1][j], spin)
		}, 0, core.WithPartitioner(p))
		if !first {
			prevT.Precede(S)
		}
		prevT = T
		first = false
	}
	return g
}

// TaskflowStats runs one instrumented m×m wavefront: the executor counts
// scheduler events (WithMetrics) and the taskflow collects timed run
// statistics. It returns the checksum, the run's RunStats, and the
// executor's counter snapshot at quiescence. When dotw is non-nil the
// annotated task graph (per-task execution counts and durations) is
// written to it after the run.
func TaskflowStats(m, spin, workers int, dotw io.Writer) (uint64, core.RunStats, executor.Snapshot, error) {
	e := executor.New(workers, executor.WithMetrics())
	defer e.Shutdown()
	tf := core.NewShared(e).SetName(fmt.Sprintf("wavefront_%dx%d", m, m)).CollectRunStats(true)
	g := Build(tf, m, spin)
	if err := tf.Run(); err != nil {
		return 0, core.RunStats{}, executor.Snapshot{}, err
	}
	rs, _ := tf.LastRunStats()
	snap, _ := e.MetricsSnapshot()
	if dotw != nil {
		if err := tf.DumpAnnotated(dotw); err != nil {
			return 0, core.RunStats{}, executor.Snapshot{}, err
		}
	}
	return g[m][m], rs, snap, nil
}

// FlowGraph runs the wavefront on the TBB FlowGraph model.
func FlowGraph(m, spin, workers int) uint64 {
	fg := flowgraph.NewGraph(workers)
	defer fg.Close()
	g := grid(m)
	nodes := make([][]*flowgraph.ContinueNode, m)
	for i := 0; i < m; i++ {
		nodes[i] = make([]*flowgraph.ContinueNode, m)
		for j := 0; j < m; j++ {
			i, j := i+1, j+1
			nodes[i-1][j-1] = flowgraph.NewContinueNode(fg, func(flowgraph.ContinueMsg) {
				g[i][j] = kernel(g[i][j-1], g[i-1][j], spin)
			})
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i+1 < m {
				flowgraph.MakeEdge(nodes[i][j], nodes[i+1][j])
			}
			if j+1 < m {
				flowgraph.MakeEdge(nodes[i][j], nodes[i][j+1])
			}
		}
	}
	nodes[0][0].TryPut(flowgraph.ContinueMsg{}) // explicit source, like TBB
	fg.WaitForAll()
	return g[m][m]
}

// OMP runs the wavefront on the OpenMP task-depend model: tasks are
// declared in row-major (topological) order with one token per dependency
// edge, as in the paper's static annotation style.
func OMP(m, spin, workers int) uint64 {
	p := omp.NewParallel(workers)
	defer p.Close()
	g := grid(m)
	p.Single(func(s *omp.Scope) {
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				i, j := i, j
				var deps []omp.Dep
				if i > 1 {
					deps = append(deps, omp.In(edgeToken(i-1, j, i, j)))
				}
				if j > 1 {
					deps = append(deps, omp.In(edgeToken(i, j-1, i, j)))
				}
				var outs []string
				if i < m {
					outs = append(outs, edgeToken(i, j, i+1, j))
				}
				if j < m {
					outs = append(outs, edgeToken(i, j, i, j+1))
				}
				if len(outs) > 0 {
					deps = append(deps, omp.Out(outs...))
				}
				s.Task(func() {
					g[i][j] = kernel(g[i][j-1], g[i-1][j], spin)
				}, deps...)
			}
		}
	})
	return g[m][m]
}

func edgeToken(i0, j0, i1, j1 int) string {
	return fmt.Sprintf("e%d_%d__%d_%d", i0, j0, i1, j1)
}

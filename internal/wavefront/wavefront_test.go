package wavefront

import (
	"testing"

	"gotaskflow/internal/core"
)

// TestLevelizedAgrees checks the levelized (partitioned parallel-loop)
// formulation against the sequential checksum for every partitioner,
// several grid sizes, and both 1- and 4-worker pools.
func TestLevelizedAgrees(t *testing.T) {
	parts := []struct {
		name string
		p    core.Partitioner
	}{
		{"Static", core.Static},
		{"Dynamic", core.Dynamic},
		{"Guided", core.Guided},
	}
	for _, pt := range parts {
		t.Run(pt.name, func(t *testing.T) {
			for _, m := range []int{1, 2, 3, 8, 16, 31} {
				want := Sequential(m, 16)
				if got, err := TaskflowLevelized(m, 16, 4, pt.p); err != nil || got != want {
					t.Fatalf("m=%d: TaskflowLevelized = %#x, %v, want %#x", m, got, err, want)
				}
			}
			want := Sequential(12, 8)
			if got, err := TaskflowLevelized(12, 8, 1, pt.p); err != nil || got != want {
				t.Fatalf("1 worker: TaskflowLevelized = %#x, %v, want %#x", got, err, want)
			}
		})
	}
}

func TestBackendsAgree(t *testing.T) {
	for _, m := range []int{1, 2, 3, 8, 16, 31} {
		want := Sequential(m, 16)
		if got, err := Taskflow(m, 16, 4); err != nil || got != want {
			t.Fatalf("m=%d: Taskflow = %#x, %v, want %#x", m, got, err, want)
		}
		if got := FlowGraph(m, 16, 4); got != want {
			t.Fatalf("m=%d: FlowGraph = %#x, want %#x", m, got, want)
		}
		if got := OMP(m, 16, 4); got != want {
			t.Fatalf("m=%d: OMP = %#x, want %#x", m, got, want)
		}
	}
}

func TestSingleWorker(t *testing.T) {
	want := Sequential(12, 8)
	if got, err := Taskflow(12, 8, 1); err != nil || got != want {
		t.Fatalf("Taskflow(1 worker) = %#x, %v, want %#x", got, err, want)
	}
	if got := FlowGraph(12, 8, 1); got != want {
		t.Fatalf("FlowGraph(1 worker) = %#x, want %#x", got, want)
	}
	if got := OMP(12, 8, 1); got != want {
		t.Fatalf("OMP(1 worker) = %#x, want %#x", got, want)
	}
}

func TestDeterministicChecksum(t *testing.T) {
	a := Sequential(10, 32)
	b := Sequential(10, 32)
	if a != b {
		t.Fatal("Sequential not deterministic")
	}
	if Sequential(10, 32) == Sequential(10, 33) {
		t.Fatal("spin count does not affect checksum (kernel optimized away?)")
	}
	if Sequential(10, 32) == Sequential(11, 32) {
		t.Fatal("size does not affect checksum")
	}
}

func TestNumTasks(t *testing.T) {
	if NumTasks(16) != 256 {
		t.Fatalf("NumTasks(16) = %d", NumTasks(16))
	}
}

func TestLargerGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := 64 // 4096 tasks
	want := Sequential(m, 4)
	if got, err := Taskflow(m, 4, 2); err != nil || got != want {
		t.Fatalf("Taskflow large = %#x, %v, want %#x", got, err, want)
	}
}

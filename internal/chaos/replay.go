package chaos

// Seed-replay plumbing for the chaos suite. Every stress case derives its
// fault plan and scheduler seed from one int64; when a case fails, the
// test prints a single copy-pasteable line (see Recipe) that re-runs
// exactly that case, and CHAOS_SEED pins the whole suite to one seed for
// the replay run.

import (
	"fmt"
	"os"
	"strconv"
)

// SeedEnv is the environment variable that pins the chaos suite to a
// single seed: `CHAOS_SEED=17 go test ./internal/chaos -run <case>`
// replays the fault plan and scheduler seeding of seed 17 only.
const SeedEnv = "CHAOS_SEED"

// Seeds returns the seed sweep for a stress case: 0..n-1 by default, or
// just the pinned seed when the CHAOS_SEED environment variable is set.
// A malformed CHAOS_SEED panics rather than silently sweeping — a replay
// run must never fan back out.
func Seeds(n int) []int64 {
	if v := os.Getenv(SeedEnv); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("chaos: %s=%q is not an int64: %v", SeedEnv, v, err))
		}
		return []int64{seed}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// Recipe formats the one-line replay recipe printed by failing chaos and
// simulation stress cases: the seed, worker count and graph identity,
// plus the exact command that re-runs only the failing case. Everything
// needed to reproduce the failure deterministically fits in the one line.
func Recipe(testPattern string, pkg string, seed int64, workers int, graph string) string {
	return fmt.Sprintf(
		"replay: seed=%d workers=%d graph=%s → %s=%d go test %s -run '%s' -count=1",
		seed, workers, graph, SeedEnv, seed, pkg, testPattern)
}

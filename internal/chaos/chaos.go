// Package chaos is a deterministic fault-injection harness for exercising
// the executor's failure paths. An Injector wraps task bodies so that,
// with configured probabilities, a body panics, returns an error, or is
// delayed before running. Every decision is drawn from a single seeded
// PRNG at Wrap time — not at run time — so the injected fault plan is a
// pure function of (seed, wrap order) and cannot be perturbed by
// scheduling nondeterminism. Re-running a stress case with the same seed
// replays the same faults.
//
// The harness is used by the chaos stress suite (go test ./internal/chaos
// -race, or `make chaos`) to assert the liveness contract of the fault
// layer: no matter which mixture of panics, errors, and delays is
// injected into a graph, the executor quiesces, waiters unblock, and the
// topology reports a coherent aggregated error.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every error-mode fault, so tests
// can assert an observed failure is chaos-made with errors.Is.
var ErrInjected = errors.New("chaos: injected failure")

// Mode classifies a planned fault.
type Mode uint8

const (
	// None leaves the wrapped body untouched.
	None Mode = iota
	// Fail makes the wrapped body return an error wrapping ErrInjected.
	Fail
	// Panic makes the wrapped body panic.
	Panic
	// Delay sleeps a bounded random duration before running the body.
	Delay
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config sets the per-task fault probabilities. The probabilities are
// tried in order panic, fail, delay against one uniform draw, so their
// sum must not exceed 1.
type Config struct {
	Seed   int64
	PPanic float64
	PFail  float64
	PDelay float64
	// MaxDelay bounds Delay faults; 0 means 1ms.
	MaxDelay time.Duration
	// Sleep, when non-nil, replaces time.Sleep for Delay faults. Under
	// the deterministic simulation executor (internal/sim) it is wired to
	// SimExecutor.AdvanceBy so injected delays advance the virtual clock
	// instead of costing wall time.
	Sleep func(time.Duration)
}

// Fault is one planned injection, recorded at Wrap time.
type Fault struct {
	Task  string
	Mode  Mode
	Delay time.Duration // set for Delay faults
}

// Injector plans and applies faults. Safe for concurrent use by the
// wrapped bodies; Wrap itself draws from the shared PRNG under a lock, so
// call it from one goroutine (graph construction) for a reproducible
// plan.
type Injector struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	planned   []Fault
	triggered []Fault
}

// New creates an Injector from cfg, validating the probability mass.
func New(cfg Config) *Injector {
	if cfg.PPanic < 0 || cfg.PFail < 0 || cfg.PDelay < 0 ||
		cfg.PPanic+cfg.PFail+cfg.PDelay > 1 {
		panic("chaos: fault probabilities must be non-negative and sum to <= 1")
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// plan draws the fault decision for one task.
func (in *Injector) plan(name string) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := Fault{Task: name}
	r := in.rng.Float64()
	switch {
	case r < in.cfg.PPanic:
		f.Mode = Panic
	case r < in.cfg.PPanic+in.cfg.PFail:
		f.Mode = Fail
	case r < in.cfg.PPanic+in.cfg.PFail+in.cfg.PDelay:
		f.Mode = Delay
		f.Delay = time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay)) + 1)
	}
	if f.Mode != None {
		in.planned = append(in.planned, f)
	}
	return f
}

// record notes that a planned fault actually fired (fail-fast
// cancellation can skip wrapped bodies, so the triggered list may be a
// subset of the plan).
func (in *Injector) record(f Fault) {
	in.mu.Lock()
	in.triggered = append(in.triggered, f)
	in.mu.Unlock()
}

// apply runs f's effect around body. Returns the body's verdict.
func (in *Injector) apply(f Fault, body func() error) error {
	switch f.Mode {
	case Panic:
		in.record(f)
		panic(fmt.Sprintf("chaos: injected panic in task %q", f.Task))
	case Fail:
		in.record(f)
		return fmt.Errorf("chaos: task %q: %w", f.Task, ErrInjected)
	case Delay:
		in.record(f)
		if in.cfg.Sleep != nil {
			in.cfg.Sleep(f.Delay)
		} else {
			time.Sleep(f.Delay)
		}
	}
	if body == nil {
		return nil
	}
	return body()
}

// Wrap plans a fault for the named task and returns an error-returning
// body (for Taskflow.EmplaceErr) that applies it around fn. fn may be
// nil.
func (in *Injector) Wrap(name string, fn func()) func() error {
	f := in.plan(name)
	return func() error {
		return in.apply(f, func() error {
			if fn != nil {
				fn()
			}
			return nil
		})
	}
}

// WrapErr is Wrap for bodies that already return an error.
func (in *Injector) WrapErr(name string, fn func() error) func() error {
	f := in.plan(name)
	return func() error { return in.apply(f, fn) }
}

// Planned returns a copy of the fault plan in Wrap order.
func (in *Injector) Planned() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.planned...)
}

// Triggered returns a copy of the faults that actually fired.
func (in *Injector) Triggered() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.triggered...)
}

// CountPlanned returns how many faults of mode m are in the plan.
func (in *Injector) CountPlanned(m Mode) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.planned {
		if f.Mode == m {
			n++
		}
	}
	return n
}

package chaos_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"gotaskflow/internal/chaos"
	"gotaskflow/internal/core"
	"gotaskflow/internal/testutil"
)

// waitQuiesce runs WaitForAll with a liveness deadline: the whole point of
// the fault layer is that no injected mixture of panics, failures, and
// delays can hang the waiters. On failure it prints the recipe line that
// replays exactly this case.
func waitQuiesce(t *testing.T, tf *core.Taskflow, recipe string) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- tf.WaitForAll() }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		t.Fatalf("executor failed to quiesce under injected faults\n%s", recipe)
		return nil
	}
}

// assertCoherent checks the error contract after a chaotic run: an error
// is reported iff a panic or failure actually fired, and pure error-mode
// faults are identifiable via errors.Is(err, ErrInjected). Every failure
// carries the one-line replay recipe.
func assertCoherent(t *testing.T, in *chaos.Injector, err error, recipe string) {
	t.Helper()
	fails, panics := 0, 0
	for _, f := range in.Triggered() {
		switch f.Mode {
		case chaos.Fail:
			fails++
		case chaos.Panic:
			panics++
		}
	}
	if fails+panics > 0 && err == nil {
		t.Fatalf("%d faults fired but the run reported no error\n%s", fails+panics, recipe)
	}
	if fails+panics == 0 && err != nil {
		t.Fatalf("no fault fired but the run reported %v\n%s", err, recipe)
	}
	if err == nil {
		return
	}
	if panics == 0 && !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("error %v does not identify the injected failure\n%s", err, recipe)
	}
	if fails == 0 && panics > 0 && !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %v does not surface the injected panic\n%s", err, recipe)
	}
}

// buildWavefront wires an n x n wavefront grid — cell (i,j) precedes
// (i+1,j) and (i,j+1) — with every body wrapped by the injector.
func buildWavefront(tf *core.Taskflow, in *chaos.Injector, n int) {
	grid := make([][]core.Task, n)
	for i := range grid {
		grid[i] = make([]core.Task, n)
		for j := range grid[i] {
			name := fmt.Sprintf("w%d_%d", i, j)
			grid[i][j] = tf.EmplaceErr(in.Wrap(name, func() {
				// A touch of real work so delays overlap execution.
				runtime.Gosched()
			})).Name(name)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				grid[i][j].Precede(grid[i+1][j])
			}
			if j+1 < n {
				grid[i][j].Precede(grid[i][j+1])
			}
		}
	}
}

// buildTraversal wires a layered random DAG — layers x width nodes, each
// non-first-layer node depending on one-to-three random nodes of the
// previous layer — with every body wrapped by the injector. The shape is
// drawn from its own seeded PRNG so a failing seed replays exactly.
func buildTraversal(tf *core.Taskflow, in *chaos.Injector, seed int64, layers, width int) {
	rng := rand.New(rand.NewSource(seed))
	prev := make([]core.Task, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]core.Task, 0, width)
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("t%d_%d", l, w)
			task := tf.EmplaceErr(in.Wrap(name, nil)).Name(name)
			if l > 0 {
				deps := 1 + rng.Intn(3)
				for d := 0; d < deps; d++ {
					prev[rng.Intn(len(prev))].Precede(task)
				}
			}
			cur = append(cur, task)
		}
		prev = cur
	}
}

func TestChaosWavefrontQuiesces(t *testing.T) {
	for _, seed := range chaos.Seeds(8) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recipe := chaos.Recipe(fmt.Sprintf("TestChaosWavefrontQuiesces/seed%d", seed),
				"./internal/chaos", seed, 4, "wavefront8x8")
			in := chaos.New(chaos.Config{
				Seed:     seed,
				PPanic:   0.02,
				PFail:    0.05,
				PDelay:   0.20,
				MaxDelay: 2 * time.Millisecond,
			})
			tf := core.New(4)
			defer tf.Close()
			buildWavefront(tf, in, 8)
			assertCoherent(t, in, waitQuiesce(t, tf, recipe), recipe)
		})
	}
}

func TestChaosTraversalQuiesces(t *testing.T) {
	for _, seed := range chaos.Seeds(8) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recipe := chaos.Recipe(fmt.Sprintf("TestChaosTraversalQuiesces/seed%d", seed),
				"./internal/chaos", seed, 4, "traversal12x8")
			in := chaos.New(chaos.Config{
				Seed:     seed,
				PPanic:   0.03,
				PFail:    0.08,
				PDelay:   0.15,
				MaxDelay: time.Millisecond,
			})
			tf := core.New(4)
			defer tf.Close()
			buildTraversal(tf, in, seed, 12, 8)
			assertCoherent(t, in, waitQuiesce(t, tf, recipe), recipe)
		})
	}
}

// Faults layered on retrying tasks: retries must neither hang the
// topology nor mask a permanently failing body.
func TestChaosWithRetriesQuiesces(t *testing.T) {
	for _, seed := range chaos.Seeds(4) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recipe := chaos.Recipe(fmt.Sprintf("TestChaosWithRetriesQuiesces/seed%d", seed),
				"./internal/chaos", seed, 4, "chain40+retry")
			in := chaos.New(chaos.Config{Seed: seed, PFail: 0.15, PDelay: 0.1})
			tf := core.New(4)
			defer tf.Close()
			var prev core.Task
			for i := 0; i < 40; i++ {
				task := tf.EmplaceErr(in.Wrap(fmt.Sprintf("r%d", i), nil)).
					Retry(2, 100*time.Microsecond)
				if i > 0 {
					prev.Precede(task)
				}
				prev = task
			}
			err := waitQuiesce(t, tf, recipe)
			// A Wrap-planned Fail fires on every attempt, so retries must
			// exhaust and surface it; a clean plan must stay clean.
			if in.CountPlanned(chaos.Fail) > 0 {
				if !errors.Is(err, chaos.ErrInjected) {
					t.Fatalf("err = %v, want injected failure after retry exhaustion\n%s", err, recipe)
				}
			} else if err != nil {
				t.Fatalf("err = %v with a fault-free plan\n%s", err, recipe)
			}
		})
	}
}

// Faults inside semaphore-throttled graphs: units must be returned on
// every exit path or the drain deadlocks.
func TestChaosWithSemaphoresQuiesces(t *testing.T) {
	for _, seed := range chaos.Seeds(4) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recipe := chaos.Recipe(fmt.Sprintf("TestChaosWithSemaphoresQuiesces/seed%d", seed),
				"./internal/chaos", seed, 4, "sem2x60")
			in := chaos.New(chaos.Config{Seed: seed, PPanic: 0.05, PFail: 0.1, PDelay: 0.2})
			tf := core.New(4)
			defer tf.Close()
			sem := core.NewSemaphore(2)
			for i := 0; i < 60; i++ {
				tf.EmplaceErr(in.Wrap(fmt.Sprintf("s%d", i), nil)).
					Acquire(sem).Release(sem)
			}
			assertCoherent(t, in, waitQuiesce(t, tf, recipe), recipe)
		})
	}
}

// Park/wake churn: repeated burst/idle cycles on ONE pool force every
// worker through full eventcount park/unpark rounds between bursts, with
// injected delays randomizing who parks when. A lost wakeup anywhere in
// the publish-then-notify protocol shows up here as a hung run.
func TestChaosParkWakeChurn(t *testing.T) {
	in := chaos.New(chaos.Config{
		Seed:     7,
		PDelay:   0.5,
		MaxDelay: time.Millisecond,
	})
	tf := core.New(4)
	defer tf.Close()
	buildWavefront(tf, in, 3)
	for round := 0; round < 10; round++ {
		done := make(chan error, 1)
		go func() { done <- tf.Run() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("round %d: pool failed to wake and quiesce", round)
		}
		// Idle gap: let every worker park so the next round's dispatch
		// exercises cold wakeups through the eventcount.
		time.Sleep(500 * time.Microsecond)
	}
}

func TestChaosDeterministicPlan(t *testing.T) {
	build := func() []chaos.Fault {
		in := chaos.New(chaos.Config{Seed: 42, PPanic: 0.1, PFail: 0.2, PDelay: 0.3})
		for i := 0; i < 200; i++ {
			in.Wrap(fmt.Sprintf("n%d", i), nil)
		}
		return in.Planned()
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("plan is empty; probabilities too low for the test to mean anything")
	}
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The whole suite must not leak goroutines: after every topology drains
// and executors shut down, the count returns to the baseline (shared
// assertion: testutil.NoLeaks).
func TestChaosNoGoroutineLeak(t *testing.T) {
	testutil.NoLeaks(t)
	for _, seed := range chaos.Seeds(3) {
		recipe := chaos.Recipe("TestChaosNoGoroutineLeak", "./internal/chaos", seed, 4, "wavefront6x6")
		in := chaos.New(chaos.Config{Seed: seed, PPanic: 0.05, PFail: 0.1, PDelay: 0.2})
		tf := core.New(4)
		buildWavefront(tf, in, 6)
		waitQuiesce(t, tf, recipe)
		tf.Close()
	}
}

package chaos_test

// Chaos × deterministic simulation: the fault plan (pure function of the
// chaos seed and wrap order) composed with a simulated schedule (pure
// function of the sim seed) makes the ENTIRE failing run a pure function
// of one seed — faults, interleaving, error text and all. These tests
// drive the same graph shapes as the real-pool chaos suite through
// internal/sim and assert the composition replays bit-for-bit: identical
// schedule hashes, identical aggregated errors, identical triggered
// fault lists. Delay faults advance the virtual clock through the
// Config.Sleep hook, so a 2ms injected delay costs no wall time and
// perturbs the schedule only through the decisions the PRNG makes.

import (
	"fmt"
	"testing"
	"time"

	"gotaskflow/internal/chaos"
	"gotaskflow/internal/core"
	"gotaskflow/internal/sim"
)

// chaosSimRun executes one wavefront under composed chaos+sim seeding
// and returns everything a replay must reproduce.
func chaosSimRun(t *testing.T, seed int64, recipe string) (hash uint64, errText string, triggered []chaos.Fault) {
	t.Helper()
	s := sim.New(4, sim.WithSeed(seed))
	in := chaos.New(chaos.Config{
		Seed:     seed,
		PPanic:   0.04,
		PFail:    0.08,
		PDelay:   0.20,
		MaxDelay: 2 * time.Millisecond,
		Sleep:    s.AdvanceBy, // injected delays advance virtual time, not wall time
	})
	tf := core.NewShared(s)
	buildWavefront(tf, in, 6)
	err := waitQuiesce(t, tf, recipe)
	assertCoherent(t, in, err, recipe)
	if lerr := s.Failure(); lerr != nil {
		t.Fatalf("liveness failure: %v\n%s", lerr, recipe)
	}
	if cerr := s.Stats().Check(); cerr != nil {
		t.Fatalf("%v\n%s", cerr, recipe)
	}
	if err != nil {
		errText = err.Error()
	}
	return s.ScheduleHash(), errText, in.Triggered()
}

func TestChaosSimComposedReplay(t *testing.T) {
	for _, seed := range chaos.Seeds(30) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recipe := chaos.Recipe(fmt.Sprintf("TestChaosSimComposedReplay/seed%d", seed),
				"./internal/chaos", seed, 4, "sim-wavefront6x6")
			h1, e1, f1 := chaosSimRun(t, seed, recipe)
			h2, e2, f2 := chaosSimRun(t, seed, recipe)
			if h1 != h2 {
				t.Fatalf("schedule hashes differ across replays: %#x vs %#x\n%s", h1, h2, recipe)
			}
			if e1 != e2 {
				t.Fatalf("aggregated errors differ across replays:\n%q\nvs\n%q\n%s", e1, e2, recipe)
			}
			if len(f1) != len(f2) {
				t.Fatalf("triggered faults differ across replays: %d vs %d\n%s", len(f1), len(f2), recipe)
			}
			for i := range f1 {
				if f1[i] != f2[i] {
					t.Fatalf("triggered fault %d differs: %+v vs %+v\n%s", i, f1[i], f2[i], recipe)
				}
			}
		})
	}
}

package circuit

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c *Circuit) *Circuit {
	t.Helper()
	var sb strings.Builder
	if err := c.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseVerilog(strings.NewReader(sb.String()), c.Lib)
	if err != nil {
		t.Fatalf("parse back failed: %v\n--- verilog ---\n%s", err, sb.String())
	}
	return got
}

// gateByName indexes a circuit for structure comparison.
func gateByName(c *Circuit) map[string]*Gate {
	m := map[string]*Gate{}
	for _, g := range c.Gates {
		m[g.Name] = g
	}
	return m
}

func compareCircuits(t *testing.T, want, got *Circuit) {
	t.Helper()
	if got.NumGates() != want.NumGates() {
		t.Fatalf("round-trip has %d gates, want %d", got.NumGates(), want.NumGates())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("round-trip has %d edges, want %d", got.NumEdges(), want.NumEdges())
	}
	wg, gg := gateByName(want), gateByName(got)
	for name, w := range wg {
		g, ok := gg[name]
		if !ok {
			t.Fatalf("gate %s missing after round-trip", name)
		}
		if g.Kind != w.Kind {
			t.Fatalf("gate %s kind %s, want %s", name, g.Kind, w.Kind)
		}
		cellName := func(x *Gate) string {
			if x.Cell == nil {
				return ""
			}
			return x.Cell.Name
		}
		if cellName(g) != cellName(w) {
			t.Fatalf("gate %s cell %q, want %q", name, cellName(g), cellName(w))
		}
		if g.WireCap != w.WireCap {
			t.Fatalf("gate %s wire cap %v, want %v", name, g.WireCap, w.WireCap)
		}
		// Fanin sets must match by driver name (pin order preserved).
		if len(g.Fanin) != len(w.Fanin) {
			t.Fatalf("gate %s has %d fanins, want %d", name, len(g.Fanin), len(w.Fanin))
		}
		for k := range w.Fanin {
			wd := want.Gates[w.Fanin[k]].Name
			gd := got.Gates[g.Fanin[k]].Name
			if wd != gd {
				t.Fatalf("gate %s fanin %d is %s, want %s", name, k, gd, wd)
			}
		}
	}
}

func TestVerilogRoundTripFigure8(t *testing.T) {
	c := Figure8()
	got := roundTrip(t, c)
	compareCircuits(t, c, got)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVerilogRoundTripGenerated(t *testing.T) {
	c := Generate("netA", Config{Gates: 800, Seed: 17})
	got := roundTrip(t, c)
	compareCircuits(t, c, got)
	if got.Name != "netA" {
		t.Fatalf("module name %q", got.Name)
	}
}

func TestVerilogOutputShape(t *testing.T) {
	c := Figure8()
	var sb strings.Builder
	if err := c.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module figure8 (",
		"input inp1;",
		"output out;",
		"AND2_X1 u1 (.A(inp1), .B(inp2), .Y(n3));",
		"DFF_X1 f1 (.D(n6), .CK(clk), .Q(f1_Q));",
		"assign out = n6;",
		"// cap n3 1",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("verilog missing %q:\n%s", want, out)
		}
	}
}

func TestParseVerilogErrors(t *testing.T) {
	lib := Figure8().Lib
	cases := map[string]string{
		"noModule":    "wire x;",
		"unknownCell": "module m (a); input a; wire w;\n  FOO_X9 u1 (.A(a), .Y(w));\nendmodule",
		"missingPin":  "module m (a); input a; wire w;\n  NAND2_X1 u1 (.A(a), .Y(w));\nendmodule",
		"noDriver":    "module m (o); output o;\n  assign o = ghost;\nendmodule",
		"doubleDrive": "module m (a); input a; wire w;\n  INV_X1 u1 (.A(a), .Y(w));\n  INV_X1 u2 (.A(a), .Y(w));\nendmodule",
		"combLoop":    "module m (a); input a; wire w1; wire w2;\n  INV_X1 u1 (.A(w2), .Y(w1));\n  INV_X1 u2 (.A(w1), .Y(w2));\nendmodule",
		"badAssign":   "module m (o); output o;\n  assign o;\nendmodule",
		"ffNoQ":       "module m (a); input a;\n  DFF_X1 f1 (.D(a), .CK(clk));\nendmodule",
	}
	for name, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src), lib); err == nil {
			t.Fatalf("%s: invalid verilog accepted", name)
		}
	}
}

func TestParseVerilogHandWritten(t *testing.T) {
	lib := Figure8().Lib
	src := `
// a small hand-written netlist
module adderish (a, b, o);
  input a; input b;
  output o;
  wire w1; wire w2;
  // cap w1 2.5
  NAND2_X1 g1 (.A(a), .B(b), .Y(w1));
  INV_X2 g2 (.A(w1), .Y(w2));
  assign o = w2;
endmodule
`
	c, err := ParseVerilog(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 5 { // a, b, g1, g2, o
		t.Fatalf("parsed %d gates", c.NumGates())
	}
	g := gateByName(c)
	if g["g1"].WireCap != 2.5 {
		t.Fatalf("cap directive lost: %v", g["g1"].WireCap)
	}
	if g["g2"].Cell.Name != "INV_X2" {
		t.Fatal("cell mapping lost")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Package circuit provides the gate-level netlist model and the synthetic
// circuit generator behind the OpenTimer experiments of the Cpp-Taskflow
// paper (Section IV-B). The paper evaluates on industrial designs (tv80,
// vga_lcd, netcard, leon3mp); those netlists are not redistributable, so
// this package generates seeded random circuits with the same structural
// properties that matter for the experiments: bounded fan-in, long
// irregular fan-out cones, a flip-flop population that splits the timing
// graph into register-bounded stages, and sizes scalable from thousands to
// millions of gates.
//
// The timing graph view is standard: primary inputs and flip-flop Q pins
// are startpoints, primary outputs and flip-flop D pins are endpoints, and
// every edge goes from a lower to a higher node index (a valid topological
// order by construction).
package circuit

import (
	"fmt"
	"math/rand"

	"gotaskflow/internal/celllib"
)

// Kind classifies a node of the timing graph.
type Kind uint8

const (
	// PI is a primary input: a startpoint with arrival time zero.
	PI Kind = iota
	// FFQ is a flip-flop output pin: a startpoint clocked at time zero.
	FFQ
	// Comb is a combinational gate mapped to a library cell.
	Comb
	// FFD is a flip-flop data pin: an endpoint checked against the clock
	// period minus setup.
	FFD
	// PO is a primary output: an endpoint checked against the clock
	// period.
	PO
)

func (k Kind) String() string {
	switch k {
	case PI:
		return "PI"
	case FFQ:
		return "FFQ"
	case Comb:
		return "Comb"
	case FFD:
		return "FFD"
	case PO:
		return "PO"
	}
	return "?"
}

// Gate is one node of the timing graph. A gate drives one net whose sinks
// are the Fanout gates; Fanin[k] feeds the k-th input pin.
type Gate struct {
	ID      int
	Name    string
	Kind    Kind
	Cell    *celllib.Cell // nil for PI/PO/FFD (no driving arc needed)
	Fanin   []int32
	Fanout  []int32
	WireCap float64 // extra capacitance on the driven net, fF
}

// IsStart reports whether the gate is a timing startpoint.
func (g *Gate) IsStart() bool { return g.Kind == PI || g.Kind == FFQ }

// IsEnd reports whether the gate is a timing endpoint.
func (g *Gate) IsEnd() bool { return g.Kind == PO || g.Kind == FFD }

// Circuit is a gate-level netlist over a cell library.
type Circuit struct {
	Name  string
	Lib   *celllib.Library
	Gates []*Gate
}

// NumGates returns the total node count of the timing graph.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumNodes implements levelize.Graph.
func (c *Circuit) NumNodes() int { return len(c.Gates) }

// Successors implements levelize.Graph.
func (c *Circuit) Successors(i int, visit func(int)) {
	for _, j := range c.Gates[i].Fanout {
		visit(int(j))
	}
}

// NumEdges returns the number of timing arcs (net connections).
func (c *Circuit) NumEdges() int {
	n := 0
	for _, g := range c.Gates {
		n += len(g.Fanout)
	}
	return n
}

// Validate checks the structural invariants the timing engine relies on:
// every edge goes from a lower to a higher index (index order is
// topological), fanin/fanout lists are mutually consistent, and
// combinational fanin counts match the mapped cell.
func (c *Circuit) Validate() error {
	for u, g := range c.Gates {
		if g.ID != u {
			return fmt.Errorf("circuit %s: gate %d has ID %d", c.Name, u, g.ID)
		}
		for _, vi := range g.Fanout {
			v := int(vi)
			if v <= u {
				return fmt.Errorf("circuit %s: backward edge %s -> %s", c.Name, g.Name, c.Gates[v].Name)
			}
			found := false
			for _, ui := range c.Gates[v].Fanin {
				if int(ui) == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("circuit %s: edge %d->%d missing from fanin", c.Name, u, v)
			}
		}
		if g.Kind == Comb && g.Cell != nil && len(g.Fanin) != g.Cell.NumInputs {
			return fmt.Errorf("circuit %s: gate %s has %d fanins for cell %s", c.Name, g.Name, len(g.Fanin), g.Cell.Name)
		}
	}
	return nil
}

// connect wires u's output to an input pin of v.
func (c *Circuit) connect(u, v int) {
	c.Gates[u].Fanout = append(c.Gates[u].Fanout, int32(v))
	c.Gates[v].Fanin = append(c.Gates[v].Fanin, int32(u))
}

// Config controls synthetic circuit generation.
type Config struct {
	// Gates is the number of combinational gates (the "gate count" quoted
	// for the paper's designs).
	Gates int
	// PIs, POs: primary input/output counts; non-positive pick
	// max(4, Gates/64) and max(4, Gates/64).
	PIs, POs int
	// FFRatio is the fraction of combinational gate count added as
	// flip-flops (each contributing an FFQ startpoint and an FFD
	// endpoint); non-positive defaults to 0.08.
	FFRatio float64
	// Window bounds how far back a gate picks its fanins, shaping logic
	// depth; non-positive defaults to 256.
	Window int
	// Seed drives deterministic generation.
	Seed int64
}

func (cfg *Config) defaults() {
	if cfg.PIs <= 0 {
		cfg.PIs = max(4, cfg.Gates/64)
	}
	if cfg.POs <= 0 {
		cfg.POs = max(4, cfg.Gates/64)
	}
	if cfg.FFRatio <= 0 {
		cfg.FFRatio = 0.08
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a random circuit under cfg. The same cfg always yields
// the same circuit. Node order is: PIs and FFQs first, combinational gates
// in topological order, then FFDs and POs.
func Generate(name string, cfg Config) *Circuit {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	lib := celllib.NewNanGate45Like()
	c := &Circuit{Name: name, Lib: lib}

	one := lib.Combinational(1)
	two := lib.Combinational(2)
	dff := lib.DFF()

	numFF := int(float64(cfg.Gates) * cfg.FFRatio)
	// Startpoints.
	for i := 0; i < cfg.PIs; i++ {
		c.Gates = append(c.Gates, &Gate{
			ID: len(c.Gates), Name: fmt.Sprintf("inp%d", i), Kind: PI,
			WireCap: 0.5 + rng.Float64(),
		})
	}
	for i := 0; i < numFF; i++ {
		c.Gates = append(c.Gates, &Gate{
			ID: len(c.Gates), Name: fmt.Sprintf("f%d:Q", i), Kind: FFQ,
			Cell:    dff[rng.Intn(len(dff))],
			WireCap: 0.5 + rng.Float64(),
		})
	}
	// Combinational core: fanins drawn from a sliding window of earlier
	// nodes, so edges go forward and depth stays bounded but irregular.
	for i := 0; i < cfg.Gates; i++ {
		var cell *celllib.Cell
		nin := 1
		if rng.Float64() < 0.72 {
			nin = 2
		}
		if nin == 1 {
			cell = one[rng.Intn(len(one))]
		} else {
			cell = two[rng.Intn(len(two))]
		}
		g := &Gate{
			ID: len(c.Gates), Name: fmt.Sprintf("u%d", i), Kind: Comb,
			Cell:    cell,
			WireCap: 0.5 + 2*rng.Float64(),
		}
		c.Gates = append(c.Gates, g)
		lo := g.ID - cfg.Window
		if lo < 0 {
			lo = 0
		}
		for k := 0; k < nin; k++ {
			c.connect(lo+rng.Intn(g.ID-lo), g.ID)
		}
	}
	// Endpoints: FFD pins and POs hang off random drivers.
	firstDriver := 0
	lastDriver := len(c.Gates)
	for i := 0; i < numFF; i++ {
		g := &Gate{
			ID: len(c.Gates), Name: fmt.Sprintf("f%d:D", i), Kind: FFD,
			Cell: c.Gates[cfg.PIs+i].Cell,
		}
		c.Gates = append(c.Gates, g)
		c.connect(firstDriver+rng.Intn(lastDriver-firstDriver), g.ID)
	}
	for i := 0; i < cfg.POs; i++ {
		g := &Gate{
			ID: len(c.Gates), Name: fmt.Sprintf("out%d", i), Kind: PO,
		}
		c.Gates = append(c.Gates, g)
		c.connect(firstDriver+rng.Intn(lastDriver-firstDriver), g.ID)
	}
	return c
}

// Figure8 builds the small sample circuit of the paper's Figure 8 (one
// timing update task graph): two primary inputs, four gates u1..u4, a
// flip-flop f1, and a primary output.
func Figure8() *Circuit {
	lib := celllib.NewNanGate45Like()
	c := &Circuit{Name: "figure8", Lib: lib}
	add := func(name string, kind Kind, cell *celllib.Cell) int {
		g := &Gate{ID: len(c.Gates), Name: name, Kind: kind, Cell: cell, WireCap: 1}
		c.Gates = append(c.Gates, g)
		return g.ID
	}
	// Node indices must be a topological order (u4 comes after u2/u3).
	inp1 := add("inp1", PI, nil)
	inp2 := add("inp2", PI, nil)
	f1q := add("f1:Q", FFQ, lib.Cell("DFF_X1"))
	u1 := add("u1", Comb, lib.Cell("AND2_X1"))
	u2 := add("u2", Comb, lib.Cell("INV_X1"))
	u3 := add("u3", Comb, lib.Cell("INV_X1"))
	u4 := add("u4", Comb, lib.Cell("NOR2_X1"))
	f1d := add("f1:D", FFD, lib.Cell("DFF_X1"))
	out := add("out", PO, nil)
	c.connect(inp1, u1)
	c.connect(inp2, u1)
	c.connect(u1, u4)
	c.connect(f1q, u2)
	c.connect(u2, u3)
	c.connect(u3, u4)
	c.connect(u4, f1d)
	c.connect(u4, out)
	return c
}

package circuit

// Gate-level structural Verilog serialization: the netlist interchange
// format the paper's benchmark circuits (tv80, vga_lcd, netcard, leon3mp)
// ship in and OpenTimer consumes. WriteVerilog emits a flat module with
// one instance per gate; ParseVerilog reads the subset back, rebuilding
// the timing graph in topological index order. Wire capacitances — which
// Verilog cannot express — travel in `// cap <net> <value>` comment
// directives so the round trip preserves timing exactly.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gotaskflow/internal/celllib"
	"gotaskflow/internal/levelize"
)

// netName returns the name of the net driven by gate v.
func netName(g *Gate) string {
	switch g.Kind {
	case PI, PO:
		return sanitize(g.Name)
	case FFQ, FFD:
		return sanitize(g.Name) // f3:Q -> f3_Q
	}
	return fmt.Sprintf("n%d", g.ID)
}

func sanitize(s string) string {
	return strings.NewReplacer(":", "_", " ", "_").Replace(s)
}

// WriteVerilog emits the circuit as a flat gate-level Verilog module.
func (c *Circuit) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var inputs, outputs, wires []string
	for _, g := range c.Gates {
		switch g.Kind {
		case PI:
			inputs = append(inputs, netName(g))
		case PO:
			outputs = append(outputs, netName(g))
		case Comb, FFQ, FFD:
			wires = append(wires, netName(g))
		}
	}
	ports := append(append([]string{}, inputs...), outputs...)
	fmt.Fprintf(bw, "module %s (%s);\n", sanitize(c.Name), strings.Join(ports, ", "))
	writeDecl(bw, "input", inputs)
	writeDecl(bw, "output", outputs)
	writeDecl(bw, "wire", wires)
	bw.WriteString("\n")

	// Wire capacitance directives (Verilog has no native representation).
	for _, g := range c.Gates {
		if g.WireCap != 0 {
			fmt.Fprintf(bw, "  // cap %s %s\n", netName(g), strconv.FormatFloat(g.WireCap, 'g', -1, 64))
		}
	}
	bw.WriteString("\n")

	// Instances. Flip-flops pair an FFD (data pin) with its FFQ (output);
	// the generator creates them with matching indices (fK:D / fK:Q).
	ffq := map[string]*Gate{}
	for _, g := range c.Gates {
		if g.Kind == FFQ {
			ffq[strings.TrimSuffix(g.Name, ":Q")] = g
		}
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case Comb:
			pins := make([]string, 0, len(g.Fanin)+1)
			for k, ui := range g.Fanin {
				pins = append(pins, fmt.Sprintf(".%s(%s)",
					combPin(k), netName(c.Gates[ui])))
			}
			pins = append(pins, fmt.Sprintf(".Y(%s)", netName(g)))
			fmt.Fprintf(bw, "  %s %s (%s);\n", g.Cell.Name, sanitize(g.Name), strings.Join(pins, ", "))
		case FFD:
			base := strings.TrimSuffix(g.Name, ":D")
			q, ok := ffq[base]
			if !ok {
				return fmt.Errorf("verilog: flip-flop %s has no Q pin gate", base)
			}
			fmt.Fprintf(bw, "  %s %s (.D(%s), .CK(clk), .Q(%s));\n",
				q.Cell.Name, sanitize(base),
				netName(c.Gates[g.Fanin[0]]), netName(q))
		case PO:
			// Output port driven through an assign from its fanin net.
			fmt.Fprintf(bw, "  assign %s = %s;\n", netName(g), netName(c.Gates[g.Fanin[0]]))
		}
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}

func combPin(k int) string { return string(rune('A' + k)) }

func writeDecl(w *bufio.Writer, kind string, names []string) {
	for _, n := range names {
		fmt.Fprintf(w, "  %s %s;\n", kind, n)
	}
}

// ParseVerilog reads a flat gate-level module written by WriteVerilog (or
// hand-written in the same subset) into a Circuit over lib. Gates are
// re-indexed into topological order, so the result satisfies Validate.
func ParseVerilog(r io.Reader, lib *celllib.Library) (*Circuit, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	text := string(src)

	// Gather cap directives before stripping comments.
	caps := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "// cap "); ok {
			fields := strings.Fields(rest)
			if len(fields) == 2 {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					caps[fields[0]] = v
				}
			}
		}
	}

	stmts, name, err := verilogStatements(text)
	if err != nil {
		return nil, err
	}

	// First pass: declare nets and build proto-gates.
	type proto struct {
		name   string
		kind   Kind
		cell   *celllib.Cell
		inNets []string
		outNet string
	}
	var protos []*proto
	declared := map[string]bool{}
	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "input", "output", "wire":
			for _, n := range strings.Split(strings.TrimPrefix(st, fields[0]), ",") {
				n = strings.TrimSpace(n)
				if n == "" {
					continue
				}
				declared[n] = true
				if fields[0] == "input" {
					protos = append(protos, &proto{name: n, kind: PI, outNet: n})
				}
				if fields[0] == "output" {
					protos = append(protos, &proto{name: n, kind: PO, outNet: n + "$po"})
				}
			}
		case "assign":
			// assign out = net;
			rest := strings.TrimPrefix(st, "assign")
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("verilog: malformed assign %q", st)
			}
			lhs := strings.TrimSpace(parts[0])
			rhs := strings.TrimSpace(parts[1])
			for _, p := range protos {
				if p.kind == PO && p.name == lhs {
					p.inNets = []string{rhs}
				}
			}
		default:
			// CELL instname (.PIN(net), ...);
			cellName := fields[0]
			cell := lib.Cell(cellName)
			if cell == nil {
				return nil, fmt.Errorf("verilog: unknown cell %q", cellName)
			}
			open := strings.Index(st, "(")
			if open < 0 || len(fields) < 2 {
				return nil, fmt.Errorf("verilog: malformed instance %q", st)
			}
			inst := fields[1]
			conns, err := parseConnections(st[open:])
			if err != nil {
				return nil, fmt.Errorf("verilog: instance %s: %w", inst, err)
			}
			if cell.Sequential {
				d, q := conns["D"], conns["Q"]
				if d == "" || q == "" {
					return nil, fmt.Errorf("verilog: flip-flop %s missing D or Q", inst)
				}
				protos = append(protos,
					&proto{name: inst + ":Q", kind: FFQ, cell: cell, outNet: q},
					&proto{name: inst + ":D", kind: FFD, cell: cell, inNets: []string{d}})
				continue
			}
			p := &proto{name: inst, kind: Comb, cell: cell, outNet: conns["Y"]}
			if p.outNet == "" {
				return nil, fmt.Errorf("verilog: instance %s has no output pin", inst)
			}
			for k := 0; k < cell.NumInputs; k++ {
				net := conns[combPin(k)]
				if net == "" {
					return nil, fmt.Errorf("verilog: instance %s missing pin %s", inst, combPin(k))
				}
				p.inNets = append(p.inNets, net)
			}
			protos = append(protos, p)
		}
	}

	// Second pass: resolve nets to drivers and build adjacency.
	driver := map[string]int{}
	for i, p := range protos {
		if p.kind == FFD { // no driven net
			continue
		}
		if _, dup := driver[p.outNet]; dup {
			return nil, fmt.Errorf("verilog: net %s multiply driven", p.outNet)
		}
		driver[p.outNet] = i
	}
	adj := make(levelize.Adjacency, len(protos))
	fanins := make([][]int, len(protos))
	for i, p := range protos {
		for _, net := range p.inNets {
			d, ok := driver[net]
			if !ok {
				return nil, fmt.Errorf("verilog: net %s of %s has no driver", net, p.name)
			}
			adj[d] = append(adj[d], i)
			fanins[i] = append(fanins[i], d)
		}
	}
	order, err := levelize.LevelOf(adj)
	if err != nil {
		return nil, fmt.Errorf("verilog: %s: %w", name, err)
	}
	// Topological re-indexing: sort by (level, original index) for
	// determinism.
	perm := make([]int, len(protos))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		if order[perm[a]] != order[perm[b]] {
			return order[perm[a]] < order[perm[b]]
		}
		return perm[a] < perm[b]
	})
	newID := make([]int, len(protos))
	for pos, old := range perm {
		newID[old] = pos
	}

	c := &Circuit{Name: name, Lib: lib}
	for _, old := range perm {
		p := protos[old]
		capKey := p.outNet
		switch p.kind {
		case FFD:
			capKey = sanitize(p.name) // drives no net; keyed by pin name
		case PO:
			capKey = p.name // keyed by the port name, not the $po marker
		}
		g := &Gate{
			ID:      len(c.Gates),
			Name:    p.name,
			Kind:    p.kind,
			Cell:    p.cell,
			WireCap: caps[capKey],
		}
		c.Gates = append(c.Gates, g)
	}
	for old, ins := range fanins {
		for _, d := range ins {
			c.connect(newID[d], newID[old])
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// verilogStatements strips comments, validates the module wrapper and
// splits the body into semicolon-terminated statements.
func verilogStatements(text string) ([]string, string, error) {
	var sb strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteString(" ")
	}
	body := sb.String()
	mi := strings.Index(body, "module")
	ei := strings.LastIndex(body, "endmodule")
	if mi < 0 || ei < 0 || ei < mi {
		return nil, "", fmt.Errorf("verilog: missing module/endmodule")
	}
	body = strings.TrimSpace(body[mi+len("module") : ei])
	// Module header: name (ports);
	semi := strings.Index(body, ";")
	if semi < 0 {
		return nil, "", fmt.Errorf("verilog: missing module header terminator")
	}
	header := body[:semi]
	name := header
	if p := strings.Index(header, "("); p >= 0 {
		name = header[:p]
	}
	name = strings.TrimSpace(name)
	var stmts []string
	for _, st := range strings.Split(body[semi+1:], ";") {
		st = strings.TrimSpace(st)
		if st != "" {
			stmts = append(stmts, st)
		}
	}
	return stmts, name, nil
}

// parseConnections parses "(.A(n1), .B(n2), .Y(n3))" into pin -> net.
func parseConnections(s string) (map[string]string, error) {
	out := map[string]string{}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("malformed connection list %q", s)
	}
	// Strip exactly the outer parentheses; inner pin parens must survive.
	s = strings.TrimSuffix(strings.TrimPrefix(s, "("), ")")
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, ".") {
			return nil, fmt.Errorf("malformed pin connection %q", part)
		}
		open := strings.Index(part, "(")
		close := strings.LastIndex(part, ")")
		if open < 0 || close < open {
			return nil, fmt.Errorf("malformed pin connection %q", part)
		}
		pin := strings.TrimSpace(part[1:open])
		net := strings.TrimSpace(part[open+1 : close])
		out[pin] = net
	}
	return out, nil
}

package circuit

import (
	"testing"
	"testing/quick"

	"gotaskflow/internal/levelize"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("a", Config{Gates: 500, Seed: 3})
	b := Generate("b", Config{Gates: 500, Seed: 3})
	if a.NumGates() != b.NumGates() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different circuits")
	}
	cellName := func(g *Gate) string {
		if g.Cell == nil {
			return ""
		}
		return g.Cell.Name
	}
	for i := range a.Gates {
		if a.Gates[i].Kind != b.Gates[i].Kind || cellName(a.Gates[i]) != cellName(b.Gates[i]) {
			t.Fatalf("gate %d differs", i)
		}
	}
	c := Generate("c", Config{Gates: 500, Seed: 4})
	if c.NumEdges() == a.NumEdges() {
		same := true
		for i := range a.Gates {
			if len(a.Gates[i].Fanin) != len(c.Gates[i].Fanin) {
				same = false
				break
			}
		}
		if same {
			t.Log("seeds 3 and 4 produced structurally similar circuits (suspicious but not fatal)")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	c := Generate("t", Config{Gates: 2000, Seed: 7})
	starts, ends, combs := 0, 0, 0
	for i, g := range c.Gates {
		if g.ID != i {
			t.Fatalf("gate %d has ID %d", i, g.ID)
		}
		switch g.Kind {
		case PI:
			starts++
			if len(g.Fanin) != 0 {
				t.Fatalf("PI %d has fanin", i)
			}
		case FFQ:
			starts++
			if len(g.Fanin) != 0 || g.Cell == nil || !g.Cell.Sequential {
				t.Fatalf("FFQ %d malformed", i)
			}
		case Comb:
			combs++
			if g.Cell == nil || g.Cell.Sequential {
				t.Fatalf("comb gate %d has bad cell", i)
			}
			if len(g.Fanin) != g.Cell.NumInputs {
				t.Fatalf("gate %d: %d fanins for %s", i, len(g.Fanin), g.Cell.Name)
			}
		case FFD, PO:
			ends++
			if len(g.Fanin) != 1 {
				t.Fatalf("endpoint %d has %d fanins", i, len(g.Fanin))
			}
			if len(g.Fanout) != 0 {
				t.Fatalf("endpoint %d has fanout", i)
			}
		}
	}
	if combs != 2000 {
		t.Fatalf("generated %d comb gates, want 2000", combs)
	}
	if starts == 0 || ends == 0 {
		t.Fatal("no startpoints or endpoints")
	}
}

func TestEdgesForwardAndConsistent(t *testing.T) {
	c := Generate("t", Config{Gates: 1000, Seed: 11})
	for u, g := range c.Gates {
		for _, vi := range g.Fanout {
			v := int(vi)
			if v <= u {
				t.Fatalf("backward edge %d -> %d", u, v)
			}
			found := false
			for _, ui := range c.Gates[v].Fanin {
				if int(ui) == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from fanin list", u, v)
			}
		}
	}
}

func TestGenerateLevelizable(t *testing.T) {
	c := Generate("t", Config{Gates: 3000, Seed: 5})
	if _, err := levelize.Levels(c); err != nil {
		t.Fatalf("circuit not levelizable: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{PI: "PI", FFQ: "FFQ", Comb: "Comb", FFD: "FFD", PO: "PO", Kind(99): "?"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestStartEndPredicates(t *testing.T) {
	c := Figure8()
	for _, g := range c.Gates {
		isStart := g.Kind == PI || g.Kind == FFQ
		isEnd := g.Kind == PO || g.Kind == FFD
		if g.IsStart() != isStart || g.IsEnd() != isEnd {
			t.Fatalf("gate %s predicates wrong", g.Name)
		}
	}
}

func TestFigure8Topology(t *testing.T) {
	c := Figure8()
	if c.NumGates() != 9 {
		t.Fatalf("Figure8 has %d gates, want 9", c.NumGates())
	}
	byName := map[string]*Gate{}
	for _, g := range c.Gates {
		byName[g.Name] = g
	}
	u4 := byName["u4"]
	if len(u4.Fanin) != 2 || len(u4.Fanout) != 2 {
		t.Fatalf("u4 has %d fanins, %d fanouts", len(u4.Fanin), len(u4.Fanout))
	}
	if byName["u1"].Cell.Family != "AND2" {
		t.Fatal("u1 cell family")
	}
	if _, err := levelize.Levels(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBackwardEdge(t *testing.T) {
	c := Figure8()
	// Manufacture a backward edge.
	c.Gates[5].Fanout = append(c.Gates[5].Fanout, 1)
	c.Gates[1].Fanin = append(c.Gates[1].Fanin, 5)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate missed backward edge")
	}
}

func TestGenerateValidates(t *testing.T) {
	c := Generate("t", Config{Gates: 1200, Seed: 19})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any configuration yields a well-formed, levelizable circuit
// with all comb fanin counts matching the mapped cell.
func TestQuickGenerateWellFormed(t *testing.T) {
	f := func(seed int64, gateSel uint16, ffSel uint8) bool {
		gates := int(gateSel%400) + 1
		cfg := Config{
			Gates:   gates,
			FFRatio: float64(ffSel%20) / 100,
			Seed:    seed,
		}
		c := Generate("q", cfg)
		if _, err := levelize.Levels(c); err != nil {
			return false
		}
		for _, g := range c.Gates {
			if g.Kind == Comb && len(g.Fanin) != g.Cell.NumInputs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleToLargeCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := Generate("big", Config{Gates: 200000, Seed: 1})
	if c.NumGates() < 200000 {
		t.Fatalf("NumGates = %d", c.NumGates())
	}
	if c.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

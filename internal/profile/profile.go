// Package profile samples executor occupancy over time, reproducing the
// CPU-utilization profile of the Cpp-Taskflow paper's Figure 10: the
// number of busy workers is polled on a fixed interval while a workload
// runs, yielding a utilization-vs-time series per worker-count
// configuration.
package profile

import (
	"sync"
	"time"

	"gotaskflow/internal/executor"
)

// Sample is one utilization observation.
type Sample struct {
	At   time.Duration // offset from Start
	Busy int           // workers inside a task at the sample instant
}

// Sampler polls an executor's busy-worker count on an interval.
type Sampler struct {
	exec     *executor.Executor
	interval time.Duration

	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
	start   time.Time
}

// NewSampler creates a sampler polling e every interval (minimum 100µs).
func NewSampler(e *executor.Executor, interval time.Duration) *Sampler {
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond
	}
	return &Sampler{exec: e, interval: interval}
}

// Start begins sampling in a background goroutine.
func (s *Sampler) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.start = time.Now()
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				sample := Sample{At: time.Since(s.start), Busy: s.exec.BusyWorkers()}
				s.mu.Lock()
				s.samples = append(s.samples, sample)
				s.mu.Unlock()
			}
		}
	}()
}

// Stop ends sampling and returns the collected series.
func (s *Sampler) Stop() []Sample {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// MeanUtilization returns the average busy fraction (0..1) of the series
// for an executor with the given worker count.
func MeanUtilization(samples []Sample, workers int) float64 {
	if len(samples) == 0 || workers == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		total += float64(s.Busy)
	}
	return total / float64(len(samples)) / float64(workers)
}

// PeakBusy returns the maximum busy-worker count observed.
func PeakBusy(samples []Sample) int {
	peak := 0
	for _, s := range samples {
		if s.Busy > peak {
			peak = s.Busy
		}
	}
	return peak
}

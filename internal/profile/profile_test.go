package profile

import (
	"sync/atomic"
	"testing"
	"time"

	"gotaskflow/internal/executor"
)

func TestSamplerObservesBusyWorkers(t *testing.T) {
	e := executor.New(2, executor.WithBusyTracking())
	defer e.Shutdown()
	s := NewSampler(e, 200*time.Microsecond)
	s.Start()

	release := make(chan struct{})
	var started atomic.Int64
	for i := 0; i < 2; i++ {
		e.SubmitFunc(func(executor.Context) {
			started.Add(1)
			<-release
		})
	}
	for started.Load() != 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the sampler see the busy state
	close(release)
	samples := s.Stop()

	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	if PeakBusy(samples) != 2 {
		t.Fatalf("PeakBusy = %d, want 2", PeakBusy(samples))
	}
	if MeanUtilization(samples, 2) <= 0 {
		t.Fatal("MeanUtilization = 0 while workers were busy")
	}
	// Sample timestamps must be monotonically non-decreasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatal("sample timestamps not monotone")
		}
	}
}

func TestSamplerIdleExecutor(t *testing.T) {
	e := executor.New(2, executor.WithBusyTracking())
	defer e.Shutdown()
	s := NewSampler(e, 200*time.Microsecond)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	samples := s.Stop()
	if PeakBusy(samples) != 0 {
		t.Fatalf("idle executor shows busy workers: %d", PeakBusy(samples))
	}
	if MeanUtilization(samples, 2) != 0 {
		t.Fatal("idle utilization non-zero")
	}
}

func TestMeanUtilizationEdgeCases(t *testing.T) {
	if MeanUtilization(nil, 4) != 0 {
		t.Fatal("nil samples")
	}
	if MeanUtilization([]Sample{{Busy: 2}}, 0) != 0 {
		t.Fatal("zero workers")
	}
	u := MeanUtilization([]Sample{{Busy: 1}, {Busy: 3}}, 4)
	if u != 0.5 {
		t.Fatalf("MeanUtilization = %v, want 0.5", u)
	}
}

func TestIntervalClamped(t *testing.T) {
	e := executor.New(1, executor.WithBusyTracking())
	defer e.Shutdown()
	s := NewSampler(e, 0)
	if s.interval < 100*time.Microsecond {
		t.Fatal("interval not clamped")
	}
}

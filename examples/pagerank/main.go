// Pagerank runs an iterative graph algorithm — the class of irregular,
// convergence-driven workloads the paper's introduction motivates — as one
// task dependency graph: a parallel-for sweep per iteration wrapped in a
// condition-task loop that re-runs the sweep until the ranks converge.
//
//	go run ./examples/pagerank -nodes 20000 -damping 0.85
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"

	"gotaskflow/internal/core"
	"gotaskflow/internal/graphgen"
)

func main() {
	nodes := flag.Int("nodes", 20000, "graph size")
	damping := flag.Float64("damping", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-10, "L1 convergence tolerance")
	flag.Parse()

	g := graphgen.Random(*nodes, graphgen.Config{MaxIn: 4, MaxOut: 4, Window: 512, Seed: 7})
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}

	tf := core.New(0).SetName("pagerank")
	defer tf.Close()

	var delta float64
	iter := 0

	init := tf.Emplace1(func() {}).Name("init")

	// Pull-style sweep: each node gathers rank mass from its
	// predecessors, so every task writes only next[v] — no locks. The
	// DAG is stored as successor lists; build the transpose once.
	pred := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Succ[u] {
			pred[v] = append(pred[v], int32(u))
		}
	}

	// Dangling nodes (no successors) redistribute their mass uniformly.
	var danglingShare float64
	dangling := tf.Emplace1(func() {
		var mass float64
		for u := 0; u < n; u++ {
			if g.OutDeg[u] == 0 {
				mass += rank[u]
			}
		}
		danglingShare = *damping * mass / float64(n)
	}).Name("dangling_mass")

	pullS, pullT := core.ParallelForIndex(tf, 0, n, 1, func(v int) {
		acc := (1-*damping)/float64(n) + danglingShare
		for _, u := range pred[v] {
			acc += *damping * rank[u] / float64(g.OutDeg[u])
		}
		next[v] = acc
	}, 0)

	reduceDelta := tf.Emplace1(func() {
		d := 0.0
		for i := range rank {
			d += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		delta = d
		iter++
	}).Name("fold_delta")

	cond := tf.EmplaceCondition(func() int {
		if delta > *tol && iter < 200 {
			return 0 // iterate again
		}
		return 1
	}).Name("converged?")

	report := tf.Emplace1(func() {
		fmt.Printf("pagerank on %d nodes / %d edges converged: %d iterations, delta %.3e\n",
			n, g.NumEdges(), iter, delta)
		type nr struct {
			id int
			r  float64
		}
		top := make([]nr, n)
		for i, r := range rank {
			top[i] = nr{i, r}
		}
		sort.Slice(top, func(a, b int) bool { return top[a].r > top[b].r })
		var sum float64
		for _, t := range top {
			sum += t.r
		}
		fmt.Printf("rank mass %.6f (should be ~1)\n", sum)
		fmt.Println("top 5 nodes:")
		for _, t := range top[:5] {
			fmt.Printf("  node %-8d rank %.6e\n", t.id, t.r)
		}
	}).Name("report")

	init.Precede(dangling)
	dangling.Precede(pullS)
	pullT.Precede(reduceDelta)
	reduceDelta.Precede(cond)
	cond.Precede(dangling, report) // 0: loop the sweep, 1: report

	if err := tf.WaitForAll(); err != nil {
		panic(err)
	}
}

// Conditional demonstrates condition tasks — the control-flow extension of
// the taskflow model: a condition task returns the index of the successor
// to signal, its out-edges are weak, and cycles through condition tasks
// express iterative workloads (the paper's Section II-C "dynamic and
// conditional workloads that cannot be foreseen in static graph
// constructions"). The example trains a tiny estimator until convergence:
// an optimize/evaluate loop followed by an accept/reject branch.
//
//	go run ./examples/conditional
package main

import (
	"fmt"
	"math"
	"os"

	"gotaskflow/internal/core"
)

func main() {
	tf := core.New(0).SetName("optimize_until_converged")
	defer tf.Close()

	// Estimate sqrt(2) by Newton iteration until the residual is small,
	// with an iteration cap guarding divergence.
	x := 1.0
	iter := 0
	const target = 2.0

	init := tf.Emplace1(func() {
		fmt.Println("starting Newton iteration for sqrt(2)")
	}).Name("init")

	step := tf.Emplace1(func() {
		x = 0.5 * (x + target/x)
		iter++
		fmt.Printf("  iter %d: x = %.12f\n", iter, x)
	}).Name("step")

	check := tf.EmplaceCondition(func() int {
		switch {
		case math.Abs(x*x-target) < 1e-12:
			return 1 // converged
		case iter >= 50:
			return 2 // give up
		default:
			return 0 // keep iterating
		}
	}).Name("check")

	converged := tf.Emplace1(func() {
		fmt.Printf("converged after %d iterations: sqrt(2) ~= %.12f\n", iter, x)
	}).Name("converged")

	diverged := tf.Emplace1(func() {
		fmt.Println("did not converge within the iteration cap")
	}).Name("diverged")

	init.Precede(step)
	step.Precede(check)
	check.Precede(step, converged, diverged) // 0: loop, 1: done, 2: abort

	fmt.Println("--- task graph with weak (dashed) condition edges ---")
	if err := tf.Dump(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println("--- execution ---")
	if err := tf.WaitForAll(); err != nil {
		panic(err)
	}
}

// Timing reproduces Figure 8 of the Cpp-Taskflow paper: the task
// dependency graph of a single timing update on the paper's sample
// circuit (inp1, inp2, u1-u4, flip-flop f1, out), dumped in DOT format,
// followed by the timing report and an incremental gate-resize update.
//
//	go run ./examples/timing
package main

import (
	"fmt"
	"log"
	"os"

	"gotaskflow/internal/circuit"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/sta"
	"gotaskflow/internal/stav2"
)

func main() {
	ckt := circuit.Figure8()
	tm := sta.New(ckt, experiments.ClockPeriod)
	a := stav2.New(tm, 0)
	defer a.Close()

	// Build the task dependency graph of one full timing update — the
	// graph of paper Figure 8 — and dump it before running.
	update := tm.FullUpdate()
	tf := a.Taskflow(update)
	fmt.Println("--- task graph of one timing update (DOT) ---")
	if err := tf.Dump(os.Stdout); err != nil {
		panic(err)
	}
	if err := tf.WaitForAll(); err != nil {
		panic(err)
	}

	report := func(header string) {
		fmt.Printf("--- %s ---\n", header)
		ws, at := tm.WorstSlack()
		fmt.Printf("worst slack %.3f ps at %s\n", ws, ckt.Gates[at].Name)
		fmt.Print("critical path:")
		for _, v := range tm.CriticalPath() {
			fmt.Printf(" %s", ckt.Gates[v].Name)
		}
		fmt.Println()
	}
	report("initial timing")

	// An incremental design transform: upsize u4 and re-time only the
	// affected cones (paper Section IV-B).
	var u4 int
	for v, g := range ckt.Gates {
		if g.Name == "u4" {
			u4 = v
		}
	}
	seeds := tm.ResizeGate(u4, +1)
	inc := tm.PrepareUpdate(seeds)
	fmt.Printf("resized u4 to %s: incremental update touches %d of %d propagation tasks\n",
		ckt.Gates[u4].Cell.Name, inc.NumTasks(), update.NumTasks())
	if err := a.Run(inc); err != nil {
		log.Fatalf("incremental update failed: %v", err)
	}
	report("after resize")
}

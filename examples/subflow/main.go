// Subflow reproduces the dynamic-tasking example of the Cpp-Taskflow
// paper (Listing 7 / Figure 4) and the nested subflow of Figure 5: task B
// spawns a child task graph at runtime through the same API used for
// static tasking, and the run-time-discovered graph is dumped in DOT
// format with nested clusters.
//
//	go run ./examples/subflow
package main

import (
	"fmt"
	"os"

	"gotaskflow/internal/core"
)

func main() {
	tf := core.New(0).SetName("dynamic")
	defer tf.Close()

	ts := tf.Emplace(
		func() { fmt.Println("A") },
		func() { fmt.Println("C") },
		func() { fmt.Println("D") },
	)
	A, C, D := ts[0].Name("A"), ts[1].Name("C"), ts[2].Name("D")

	// B spawns B1, B2, B3 at runtime; the subflow joins B by default, so
	// D still waits for the whole child graph.
	B := tf.EmplaceSubflow(func(sf *core.Subflow) {
		fmt.Println("B")
		bs := sf.Emplace(
			func() { fmt.Println("B1") },
			func() { fmt.Println("B2") },
			func() { fmt.Println("B3") },
		)
		B1, B2, B3 := bs[0].Name("B1"), bs[1].Name("B2"), bs[2].Name("B3")
		B1.Precede(B3)
		B2.Precede(B3)

		// Subflows nest arbitrarily (paper Figure 5).
		nested := sf.EmplaceSubflow(func(sf2 *core.Subflow) {
			inner := sf2.Emplace(
				func() { fmt.Println("B3_1") },
				func() { fmt.Println("B3_2") },
			)
			inner[0].Name("B3_1").Precede(inner[1].Name("B3_2"))
		}).Name("B_nested")
		B3.Precede(nested)
	}).Name("B")

	A.Precede(B, C)
	B.Precede(D)
	C.Precede(D)

	f := tf.Dispatch() // non-blocking dispatch, overlap other work here
	if err := f.Get(); err != nil {
		panic(err)
	}

	// After execution the spawned subflows are visible as clusters.
	fmt.Println("--- executed topology with subflows (DOT) ---")
	if err := tf.DumpTopologies(os.Stdout); err != nil {
		panic(err)
	}
	if err := tf.WaitForAll(); err != nil {
		panic(err)
	}
}

// Algorithms demonstrates the built-in algorithm collection of the paper
// (Section III-F): ParallelFor, Transform, Reduce and TransformReduce
// built as spliceable task patterns and composed into one task dependency
// graph — including inside a dynamic subflow, since the constructors take
// the unified FlowBuilder interface.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"

	"gotaskflow/internal/core"
)

func main() {
	tf := core.New(0).SetName("algorithms")
	defer tf.Close()

	const n = 100000
	data := make([]float64, n)
	squares := make([]float64, n)

	// Stage 1: fill the input in parallel chunks.
	initS, initT := core.ParallelForIndex(tf, 0, n, 1, func(i int) {
		data[i] = float64(i%1000) / 1000
	}, 0)

	// Stage 2: map through a transform.
	mapS, mapT := core.Transform(tf, data, squares, func(v float64) float64 {
		return v * v
	}, 0)

	// Stage 3: fold the mapped values.
	sum := 0.0
	redS, redT := core.Reduce(tf, squares, &sum, func(a, b float64) float64 {
		return a + b
	}, 0)

	// Stage 4: a dynamic subflow computing a second statistic with the
	// same constructors — identical API inside dynamic tasking.
	maxv := -1.0
	stats := tf.EmplaceSubflow(func(sf *core.Subflow) {
		core.TransformReduce(sf, squares, &maxv,
			func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			},
			func(v float64) float64 { return v }, 0)
	}).Name("stats_subflow")

	report := tf.Emplace1(func() {
		fmt.Printf("sum of squares  = %.3f\n", sum)
		fmt.Printf("max of squares  = %.3f\n", maxv)
	}).Name("report")

	// Splice the patterns: init -> map -> reduce -> stats -> report.
	initT.Precede(mapS)
	mapT.Precede(redS)
	redT.Precede(stats)
	stats.Precede(report)
	_ = initS

	if err := tf.WaitForAll(); err != nil {
		panic(err)
	}
}

// Quickstart reproduces Listing 1 of the Cpp-Taskflow paper: a diamond
// task dependency graph of four tasks with no explicit thread management
// or lock controls in user code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"gotaskflow/internal/core"
)

func main() {
	tf := core.New(0) // 0 workers = GOMAXPROCS
	defer tf.Close()

	ts := tf.Emplace(
		func() { fmt.Println("Task A") },
		func() { fmt.Println("Task B") },
		func() { fmt.Println("Task C") },
		func() { fmt.Println("Task D") },
	)
	A, B, C, D := ts[0].Name("A"), ts[1].Name("B"), ts[2].Name("C"), ts[3].Name("D")

	A.Precede(B, C) // A runs before B and C
	B.Precede(D)    // B runs before D
	C.Precede(D)    // C runs before D

	// Visualize the graph before running it (paper Section III-G).
	fmt.Println("--- task dependency graph (DOT) ---")
	if err := tf.Dump(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println("--- execution ---")

	if err := tf.WaitForAll(); err != nil { // block until finish
		panic(err)
	}
}

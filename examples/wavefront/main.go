// Wavefront runs the paper's regular micro-benchmark pattern (Figure 6)
// on the public taskflow API and cross-checks the parallel result against
// the sequential computation.
//
//	go run ./examples/wavefront -m 64 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gotaskflow/internal/wavefront"
)

func main() {
	m := flag.Int("m", 64, "blocks per side (tasks = m*m)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	want := wavefront.Sequential(*m, wavefront.Spin)
	seqD := time.Since(start)

	start = time.Now()
	got, err := wavefront.Taskflow(*m, wavefront.Spin, *workers)
	if err != nil {
		log.Fatalf("wavefront: %v", err)
	}
	parD := time.Since(start)

	fmt.Printf("wavefront %dx%d (%d tasks)\n", *m, *m, wavefront.NumTasks(*m))
	fmt.Printf("sequential: checksum %#x in %v\n", want, seqD)
	fmt.Printf("taskflow:   checksum %#x in %v\n", got, parD)
	if got != want {
		panic("checksum mismatch")
	}
	fmt.Println("checksums match")
}

// Pipeline demonstrates the v2 token-throughput pipeline engine on a
// streaming text-processing shape:
//
//	parse (Serial) → transform (data-parallel ForEach) →
//	enrich (Parallel, with token deferral) → fold (Serial)
//
// Stage 1 generates records in order; stage 2 fans each token's record
// block across the executor with a guided partitioner and joins before
// the token advances; stage 3 runs tokens concurrently but defers every
// 16th token until its predecessor checkpoint token has completed the
// stage (a cross-token dependency, tf::Pipeflow-style); stage 4 folds in
// strict token order. The pre-built pipeline is re-run in batches with
// RunN — state resets in place, steady-state reruns allocate nothing.
//
//	go run ./examples/pipeline -tokens 1000 -lines 8 -runs 3
package main

import (
	"flag"
	"fmt"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/pipeline"
)

const blockSize = 512 // indexes fanned out per token in the ForEach stage

func main() {
	tokens := flag.Int64("tokens", 1000, "tokens to stream per run")
	lines := flag.Int("lines", 8, "pipeline lines (tokens in flight)")
	workers := flag.Int("workers", 0, "executor workers (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "batches to pump through the one pre-built pipeline")
	flag.Parse()

	e := executor.New(*workers)
	defer e.Shutdown()

	// Per-line slots carry data between stages, as in tf::Pipeline usage;
	// one block per line for the data-parallel stage.
	parsed := make([]uint64, *lines)
	blocks := make([][]uint64, *lines)
	for i := range blocks {
		blocks[i] = make([]uint64, blockSize)
	}
	enriched := make([]uint64, *lines)
	var folded uint64

	p := pipeline.New(e, *lines,
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			if pf.Token() >= *tokens {
				pf.Stop()
				return
			}
			// Stage 1 (serial): "read" the next record in order.
			parsed[pf.Line()] = uint64(pf.Token())*2654435761 + 1
		}},
		// Stage 2 (data-parallel): one token's block fans out across the
		// executor; the join barrier holds the token until the whole
		// range is transformed.
		pipeline.ForEach(pipeline.Parallel,
			func(*pipeline.Pipeflow) int { return blockSize },
			32, pipeline.Guided,
			func(pf *pipeline.Pipeflow, begin, end int) {
				b := blocks[pf.Line()]
				seed := parsed[pf.Line()]
				for i := begin; i < end; i++ {
					x := seed + uint64(i)
					for k := 0; k < 40; k++ {
						x = x*6364136223846793005 + 1442695040888963407
					}
					b[i] = x
				}
			}),
		pipeline.Pipe{Type: pipeline.Parallel, Fn: func(pf *pipeline.Pipeflow) {
			// Stage 3 (parallel + deferral): every 16th token is a
			// checkpoint that must not complete this stage before the
			// record just ahead of it has. Defer is a no-op when the
			// target already completed; otherwise the token parks after
			// this callable returns and the callable re-runs once the
			// target is done.
			tok := pf.Token()
			if tok%16 == 0 && tok > 0 {
				pf.Defer(tok - 1)
			}
			// Odd records are ~30× heavier here, so light checkpoint
			// tokens overtake them across lines and the Defer above
			// really parks.
			iters := len(blocks[pf.Line()]) * (1 + int(tok%2)*30)
			var sum uint64
			b := blocks[pf.Line()]
			for i := 0; i < iters; i++ {
				sum += b[i%len(b)]
			}
			enriched[pf.Line()] = sum
		}},
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			// Stage 4 (serial): fold results in token order.
			folded = folded*31 + enriched[pf.Line()]
		}},
	).Named("example-stream")

	start := time.Now()
	n := p.RunN(*runs)
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		panic(err)
	}
	st := p.Stats()
	fmt.Printf("pipeline processed %d tokens (%d runs × %d) over %d lines in %v (%.0f tokens/sec)\n",
		n, st.Runs, *tokens, *lines, elapsed, float64(n)/elapsed.Seconds())
	fmt.Printf("checkpoint deferrals: %d, per-line tokens: %v\n", st.Deferrals, st.PerLine)
	fmt.Printf("ordered fold checksum: %#x\n", folded)
}

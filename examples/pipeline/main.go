// Pipeline demonstrates the task-parallel pipeline framework: a
// three-stage text-processing pipeline (parse → hash → fold) where the
// middle stage is Parallel so multiple tokens are in flight while the
// serial stages preserve strict token order.
//
//	go run ./examples/pipeline -tokens 1000 -lines 8
package main

import (
	"flag"
	"fmt"
	"time"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/pipeline"
)

func main() {
	tokens := flag.Int64("tokens", 1000, "tokens to stream")
	lines := flag.Int("lines", 8, "pipeline lines (tokens in flight)")
	workers := flag.Int("workers", 0, "executor workers (0 = GOMAXPROCS)")
	flag.Parse()

	e := executor.New(*workers)
	defer e.Shutdown()

	// Per-line slots carry data between stages, as in tf::Pipeline usage.
	parsed := make([]uint64, *lines)
	hashed := make([]uint64, *lines)
	var folded uint64

	p := pipeline.New(e, *lines,
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			if pf.Token() >= *tokens {
				pf.Stop()
				return
			}
			// Stage 1 (serial): "read" the next record in order.
			parsed[pf.Line()] = uint64(pf.Token())*2654435761 + 1
		}},
		pipeline.Pipe{Type: pipeline.Parallel, Fn: func(pf *pipeline.Pipeflow) {
			// Stage 2 (parallel): expensive per-record transform.
			x := parsed[pf.Line()]
			for i := 0; i < 2000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
			hashed[pf.Line()] = x
		}},
		pipeline.Pipe{Type: pipeline.Serial, Fn: func(pf *pipeline.Pipeflow) {
			// Stage 3 (serial): fold results in token order.
			folded = folded*31 + hashed[pf.Line()]
		}},
	)

	start := time.Now()
	n := p.Run()
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		panic(err)
	}
	fmt.Printf("pipeline processed %d tokens over %d lines in %v (%.1f tokens/ms)\n",
		n, *lines, elapsed, float64(n)/float64(elapsed.Milliseconds()+1))
	fmt.Printf("ordered fold checksum: %#x\n", folded)
}

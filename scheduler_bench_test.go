// Scheduler hot-path benchmarks: steady-state re-execution of fixed
// graph shapes via Taskflow.Run, isolating the per-task scheduling cost
// (intrusive task refs, batch successor submission, ring injection) from
// graph construction. Run with -benchmem: the linear chain is the
// zero-allocation regression gate.
package gotaskflow_test

import (
	"sync/atomic"
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// BenchmarkSchedLinearChain re-runs a 256-node chain: pure dependency
// hand-off, one successor per task, all through the speculative cache
// slot. Steady state must report 0 allocs/op.
func BenchmarkSchedLinearChain(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedLinearChainMetricsOn is BenchmarkSchedLinearChain with
// the full observability stack enabled — executor scheduler counters
// (WithMetrics) plus timed run statistics (CollectRunStats). It is the
// enabled-path allocation gate: -benchmem must still report 0 allocs/op,
// and the ns/op delta against the plain benchmark is the whole cost of
// counting.
func BenchmarkSchedLinearChainMetricsOn(b *testing.B) {
	e := executor.New(workers(), executor.WithMetrics())
	defer e.Shutdown()
	tf := core.NewShared(e).CollectRunStats(true)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if snap, ok := e.MetricsSnapshot(); !ok || snap.Total().Executed == 0 {
		b.Fatal("metrics were not collected during the benchmark")
	}
}

// BenchmarkSchedLinearChainTracingOn is BenchmarkSchedLinearChain with an
// active event-trace capture (WithTracing + StartTrace): every task span
// and scheduler lifecycle event is recorded into the per-worker rings
// while the chain re-runs. It is the tracing enabled-path gate: -benchmem
// must report <= 2 allocs/op (in practice 0 — ring slots are written in
// place), and the ns/op delta against the plain benchmark is the whole
// cost of recording. Ring overflow just drops (and counts) events, so
// long benchmark runs stay bounded.
func BenchmarkSchedLinearChainTracingOn(b *testing.B) {
	e := executor.New(workers(), executor.WithTracing(1<<16))
	defer e.Shutdown()
	tf := core.NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	if !e.StartTrace() {
		b.Fatal("StartTrace failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tr, ok := e.StopTrace(); !ok || len(tr.Events) == 0 {
		b.Fatal("no trace events were recorded during the benchmark")
	}
}

// BenchmarkSchedLinearChainHistogramsOn is BenchmarkSchedLinearChain with
// per-flow latency histograms armed (WithLatencyHistograms): every task
// execution stamps a ready time in core, reads the clock twice and records
// queue-wait, execution and end-to-end into worker-sharded histograms. It
// is the histogram enabled-path allocation gate: -benchmem must report
// 0 allocs/op — the record path is three shard-local atomic adds per
// dimension — and the ns/op delta against the plain benchmark is the whole
// cost of always-on latency accounting.
func BenchmarkSchedLinearChainHistogramsOn(b *testing.B) {
	e := executor.New(workers(), executor.WithLatencyHistograms())
	defer e.Shutdown()
	tf := core.NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	flows, ok := e.LatencyStats()
	if !ok || len(flows) == 0 || flows[0].EndToEnd.Count == 0 {
		b.Fatal("latency histograms recorded nothing during the benchmark")
	}
}

// BenchmarkSchedLinearChainFlightOn is BenchmarkSchedLinearChain with the
// always-armed flight recorder (WithFlightRecorder): every task span and
// scheduler lifecycle event is continuously written into the per-worker
// wrap-around rings, oldest events overwritten in place. It is the flight
// enabled-path allocation gate: -benchmem must report 0 allocs/op — ring
// slots are rewritten, never grown — and the ns/op delta against the plain
// benchmark is the steady-state cost of the black box.
func BenchmarkSchedLinearChainFlightOn(b *testing.B) {
	e := executor.New(workers(), executor.WithFlightRecorder(1<<12))
	defer e.Shutdown()
	tf := core.NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tr, ok := e.FlightSnapshot(); !ok || len(tr.Events) == 0 {
		b.Fatal("no flight events were recorded during the benchmark")
	}
}

// BenchmarkSchedDiamondRerun re-runs a 1→64→1 diamond: exercises batch
// successor submission (one Wake per fan-out) and fan-in join counters.
func BenchmarkSchedDiamondRerun(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n atomic.Int64
	src := tf.Emplace1(func() { n.Add(1) })
	sink := tf.Emplace1(func() { n.Add(1) })
	for i := 0; i < 64; i++ {
		mid := tf.Emplace1(func() { n.Add(1) })
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// skewedCosts builds a deterministic heavy-tailed per-element cost table:
// most elements spin a few LCG rounds, a pseudo-random ~1/16 of them spin
// 64× that. The table depends only on n, so static/guided/dynamic runs see
// the identical workload.
func skewedCosts(n int) []int {
	costs := make([]int, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range costs {
		x = x*6364136223846793005 + 1442695040888963407
		if x>>60 == 0 {
			costs[i] = 1024
		} else {
			costs[i] = 16
		}
	}
	return costs
}

// benchmarkParallelForSkewed re-runs one ParallelForIndex over 8192
// elements with heavy-tailed per-element cost. The chunk/partitioner
// choice decides the graph shape: fine-grained static chunking (the only
// static answer to unknown skew) pays one graph node per chunk, while the
// dynamic partitioners emplace min(workers, n) claimant tasks that pull
// ranges off a shared cursor at run time.
func benchmarkParallelForSkewed(b *testing.B, chunk int, opts ...core.AlgOption) {
	tf := core.New(workers())
	defer tf.Close()
	costs := skewedCosts(8192)
	out := make([]uint64, len(costs))
	core.ParallelForIndex(tf, 0, len(costs), 1, func(i int) {
		x := uint64(i)
		for r := 0; r < costs[i]; r++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		out[i] = x
	}, chunk, opts...)
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelForSkewedStatic is the baseline: chunk=1 static
// partitioning, 8192 task nodes per run.
func BenchmarkParallelForSkewedStatic(b *testing.B) {
	benchmarkParallelForSkewed(b, 1)
}

// BenchmarkParallelForSkewedStaticCoarse is the other static corner:
// default (workers×4) chunking, few nodes but no load balance under skew.
func BenchmarkParallelForSkewedStaticCoarse(b *testing.B) {
	benchmarkParallelForSkewed(b, 0)
}

// BenchmarkParallelForSkewedGuided uses the guided partitioner: grants
// start at remaining/(2·workers) and shrink toward the grain.
func BenchmarkParallelForSkewedGuided(b *testing.B) {
	benchmarkParallelForSkewed(b, 0, core.WithPartitioner(core.Guided))
}

// BenchmarkParallelForSkewedDynamic uses the dynamic partitioner with a
// modest grain: fixed 8-element grants off the shared cursor.
func BenchmarkParallelForSkewedDynamic(b *testing.B) {
	benchmarkParallelForSkewed(b, 8, core.WithPartitioner(core.Dynamic))
}

// BenchmarkSchedWideFanout re-runs a 1→512→1 diamond on a 4-worker pool:
// the source's batch submission floods one deque and the other workers
// drain it through StealBatch, so this is the batch-stealing hot path.
// The worker count is fixed (not GOMAXPROCS-derived) so the steal traffic
// exists even on single-CPU runners.
func BenchmarkSchedWideFanout(b *testing.B) {
	tf := core.New(4)
	defer tf.Close()
	var n atomic.Int64
	src := tf.Emplace1(func() { n.Add(1) })
	sink := tf.Emplace1(func() { n.Add(1) })
	for i := 0; i < 512; i++ {
		mid := tf.Emplace1(func() { n.Add(1) })
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedBinaryTree re-runs a complete binary tree of depth 10
// (2047 nodes): steadily widening fan-out, the shape work stealing feeds
// on.
func BenchmarkSchedBinaryTree(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n atomic.Int64
	const depth = 10
	level := []core.Task{tf.Emplace1(func() { n.Add(1) })}
	for d := 1; d <= depth; d++ {
		next := make([]core.Task, 0, 1<<d)
		for _, p := range level {
			l := tf.Emplace1(func() { n.Add(1) })
			r := tf.Emplace1(func() { n.Add(1) })
			p.Precede(l, r)
			next = append(next, l, r)
		}
		level = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

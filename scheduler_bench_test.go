// Scheduler hot-path benchmarks: steady-state re-execution of fixed
// graph shapes via Taskflow.Run, isolating the per-task scheduling cost
// (intrusive task refs, batch successor submission, ring injection) from
// graph construction. Run with -benchmem: the linear chain is the
// zero-allocation regression gate.
package gotaskflow_test

import (
	"sync/atomic"
	"testing"

	"gotaskflow/internal/core"
	"gotaskflow/internal/executor"
)

// BenchmarkSchedLinearChain re-runs a 256-node chain: pure dependency
// hand-off, one successor per task, all through the speculative cache
// slot. Steady state must report 0 allocs/op.
func BenchmarkSchedLinearChain(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedLinearChainMetricsOn is BenchmarkSchedLinearChain with
// the full observability stack enabled — executor scheduler counters
// (WithMetrics) plus timed run statistics (CollectRunStats). It is the
// enabled-path allocation gate: -benchmem must still report 0 allocs/op,
// and the ns/op delta against the plain benchmark is the whole cost of
// counting.
func BenchmarkSchedLinearChainMetricsOn(b *testing.B) {
	e := executor.New(workers(), executor.WithMetrics())
	defer e.Shutdown()
	tf := core.NewShared(e).CollectRunStats(true)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if snap, ok := e.MetricsSnapshot(); !ok || snap.Total().Executed == 0 {
		b.Fatal("metrics were not collected during the benchmark")
	}
}

// BenchmarkSchedLinearChainTracingOn is BenchmarkSchedLinearChain with an
// active event-trace capture (WithTracing + StartTrace): every task span
// and scheduler lifecycle event is recorded into the per-worker rings
// while the chain re-runs. It is the tracing enabled-path gate: -benchmem
// must report <= 2 allocs/op (in practice 0 — ring slots are written in
// place), and the ns/op delta against the plain benchmark is the whole
// cost of recording. Ring overflow just drops (and counts) events, so
// long benchmark runs stay bounded.
func BenchmarkSchedLinearChainTracingOn(b *testing.B) {
	e := executor.New(workers(), executor.WithTracing(1<<16))
	defer e.Shutdown()
	tf := core.NewShared(e)
	var n int64
	prev := tf.Emplace1(func() { n++ })
	for i := 1; i < 256; i++ {
		next := tf.Emplace1(func() { n++ })
		prev.Precede(next)
		prev = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	if !e.StartTrace() {
		b.Fatal("StartTrace failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tr, ok := e.StopTrace(); !ok || len(tr.Events) == 0 {
		b.Fatal("no trace events were recorded during the benchmark")
	}
}

// BenchmarkSchedDiamondRerun re-runs a 1→64→1 diamond: exercises batch
// successor submission (one Wake per fan-out) and fan-in join counters.
func BenchmarkSchedDiamondRerun(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n atomic.Int64
	src := tf.Emplace1(func() { n.Add(1) })
	sink := tf.Emplace1(func() { n.Add(1) })
	for i := 0; i < 64; i++ {
		mid := tf.Emplace1(func() { n.Add(1) })
		src.Precede(mid)
		mid.Precede(sink)
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedBinaryTree re-runs a complete binary tree of depth 10
// (2047 nodes): steadily widening fan-out, the shape work stealing feeds
// on.
func BenchmarkSchedBinaryTree(b *testing.B) {
	tf := core.New(workers())
	defer tf.Close()
	var n atomic.Int64
	const depth = 10
	level := []core.Task{tf.Emplace1(func() { n.Add(1) })}
	for d := 1; d <= depth; d++ {
		next := make([]core.Task, 0, 1<<d)
		for _, p := range level {
			l := tf.Emplace1(func() { n.Add(1) })
			r := tf.Emplace1(func() { n.Add(1) })
			p.Precede(l, r)
			next = append(next, l, r)
		}
		level = next
	}
	if err := tf.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tf.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

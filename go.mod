module gotaskflow

go 1.22

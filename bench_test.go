// Benchmarks regenerating the data points of every table and figure in
// the Cpp-Taskflow paper's evaluation (Section IV). Each benchmark times
// one backend at one representative configuration; the cmd/ binaries
// sweep the full axes. Sizes here are laptop-budget; see EXPERIMENTS.md
// for paper-scale runs and shape comparisons.
package gotaskflow_test

import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"gotaskflow/internal/dnn"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/mnist"
	"gotaskflow/internal/sta"
	"gotaskflow/internal/stav1"
	"gotaskflow/internal/stav2"
	"gotaskflow/internal/traversal"
	"gotaskflow/internal/wavefront"
)

func workers() int { return runtime.GOMAXPROCS(0) }

// ---- Figure 7 top-left: wavefront runtime vs size (fixed size point).

const benchWavefrontSize = 96 // 9216 tasks

func BenchmarkFig7WavefrontSizeTaskflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.Taskflow(benchWavefrontSize, wavefront.Spin, workers())
	}
}

func BenchmarkFig7WavefrontSizeTBB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.FlowGraph(benchWavefrontSize, wavefront.Spin, workers())
	}
}

func BenchmarkFig7WavefrontSizeOMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.OMP(benchWavefrontSize, wavefront.Spin, workers())
	}
}

func BenchmarkFig7WavefrontSizeSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.Sequential(benchWavefrontSize, wavefront.Spin)
	}
}

// ---- Figure 7 top-right: graph traversal runtime vs size.

func benchDAG() *graphgen.DAG {
	return graphgen.Random(20000, graphgen.Config{MaxIn: 4, MaxOut: 4, Seed: 2019})
}

func BenchmarkFig7TraversalSizeTaskflow(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.Taskflow(d, traversal.Spin, workers())
	}
}

func BenchmarkFig7TraversalSizeTBB(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.FlowGraph(d, traversal.Spin, workers())
	}
}

func BenchmarkFig7TraversalSizeOMP(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.OMP(d, traversal.Spin, workers())
	}
}

func BenchmarkFig7TraversalSizeSequential(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.Sequential(d, traversal.Spin)
	}
}

// ---- Figure 7 bottom: runtime vs workers (the 1-worker point, where the
// paper reports Cpp-Taskflow 32-84% faster than TBB).

func BenchmarkFig7CPU1WavefrontTaskflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.Taskflow(benchWavefrontSize, wavefront.Spin, 1)
	}
}

func BenchmarkFig7CPU1WavefrontTBB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wavefront.FlowGraph(benchWavefrontSize, wavefront.Spin, 1)
	}
}

func BenchmarkFig7CPU1TraversalTaskflow(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.Taskflow(d, traversal.Spin, 1)
	}
}

func BenchmarkFig7CPU1TraversalTBB(b *testing.B) {
	d := benchDAG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.FlowGraph(d, traversal.Spin, 1)
	}
}

// ---- Tables I-III: the software-cost analyses (regenerating the metric
// computation itself).

func BenchmarkTable1SoftwareCosts(b *testing.B) {
	root, err := experiments.SrcRoot()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard, root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SoftwareCosts(b *testing.B) {
	root, _ := experiments.SrcRoot()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(io.Discard, root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3SoftwareCosts(b *testing.B) {
	root, _ := experiments.SrcRoot()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table3(io.Discard, root); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 9: one incremental timing iteration, v1 vs v2, tv80-scale.

func benchTiming(gates int) (*sta.Timing, *rand.Rand) {
	d := experiments.Design{Name: "bench", Gates: gates, Seed: 80}
	ckt := d.Build(1)
	tm := sta.New(ckt, experiments.ClockPeriod)
	return tm, rand.New(rand.NewSource(7))
}

func BenchmarkFig9IncrementalV1OMP(b *testing.B) {
	tm, rng := benchTiming(5300)
	a := stav1.New(tm, workers())
	defer a.Close()
	a.Run(tm.FullUpdate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seeds := tm.RandomModifier(rng)
		a.Run(tm.PrepareUpdate(seeds))
	}
}

func BenchmarkFig9IncrementalV2Taskflow(b *testing.B) {
	tm, rng := benchTiming(5300)
	a := stav2.New(tm, workers())
	defer a.Close()
	a.Run(tm.FullUpdate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seeds := tm.RandomModifier(rng)
		a.Run(tm.PrepareUpdate(seeds))
	}
}

// ---- Figure 10: one full timing update on a large design, v1 vs v2.

func BenchmarkFig10FullTimingV1OMP(b *testing.B) {
	tm, _ := benchTiming(60000)
	a := stav1.New(tm, workers())
	defer a.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Run(tm.FullUpdate())
	}
}

func BenchmarkFig10FullTimingV2Taskflow(b *testing.B) {
	tm, _ := benchTiming(60000)
	a := stav2.New(tm, workers())
	defer a.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Run(tm.FullUpdate())
	}
}

// ---- Figure 12: one DNN training epoch per backend, 3-layer and
// 5-layer architectures (batch 100, lr 0.001, paper Section IV-C).

func benchMLData() (dnn.Config, *mnist.Dataset) {
	cfg, data := experiments.MLConfig(dnn.Arch3, 1, 2000)
	return cfg, data
}

func BenchmarkFig12DNNEpochTaskflow(b *testing.B) {
	cfg, data := benchMLData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.TrainTaskflow(cfg, data, workers())
	}
}

func BenchmarkFig12DNNEpochTBB(b *testing.B) {
	cfg, data := benchMLData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.TrainFlowGraph(cfg, data, workers())
	}
}

func BenchmarkFig12DNNEpochOMP(b *testing.B) {
	cfg, data := benchMLData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.TrainOMP(cfg, data, workers())
	}
}

func BenchmarkFig12DNNEpochSequential(b *testing.B) {
	cfg, data := benchMLData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.TrainSequential(cfg, data)
	}
}

func BenchmarkFig12DNN5LayerTaskflow(b *testing.B) {
	cfg, data := experiments.MLConfig(dnn.Arch5, 1, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.TrainTaskflow(cfg, data, workers())
	}
}

// Integration tests exercising cross-package flows end to end: the
// backends must agree on results at every scale, and the v1/v2 timing
// engines must stay bit-identical through long modifier sequences.
package gotaskflow_test

import (
	"math/rand"
	"strings"
	"testing"

	"gotaskflow/internal/circuit"
	"gotaskflow/internal/dnn"
	"gotaskflow/internal/executor"
	"gotaskflow/internal/experiments"
	"gotaskflow/internal/graphgen"
	"gotaskflow/internal/mnist"
	"gotaskflow/internal/sta"
	"gotaskflow/internal/stav1"
	"gotaskflow/internal/stav2"
	"gotaskflow/internal/traversal"
	"gotaskflow/internal/wavefront"
)

// TestMicroBenchmarkBackendsAgreeAtScale runs the two micro-benchmarks at
// a moderately large size across all four backends.
func TestMicroBenchmarkBackendsAgreeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const m = 48
	want := wavefront.Sequential(m, wavefront.Spin)
	if got, err := wavefront.Taskflow(m, wavefront.Spin, 2); err != nil || got != want {
		t.Fatalf("wavefront taskflow mismatch (err %v)", err)
	}
	if got := wavefront.FlowGraph(m, wavefront.Spin, 2); got != want {
		t.Fatal("wavefront flowgraph mismatch")
	}
	if got := wavefront.OMP(m, wavefront.Spin, 2); got != want {
		t.Fatal("wavefront omp mismatch")
	}

	d := graphgen.Random(30000, graphgen.Config{MaxIn: 4, MaxOut: 4, Seed: 99})
	wantT := traversal.Sequential(d, traversal.Spin)
	if got, err := traversal.Taskflow(d, traversal.Spin, 2); err != nil || got != wantT {
		t.Fatalf("traversal taskflow mismatch (err %v)", err)
	}
	if got := traversal.FlowGraph(d, traversal.Spin, 2); got != wantT {
		t.Fatal("traversal flowgraph mismatch")
	}
	if got := traversal.OMP(d, traversal.Spin, 2); got != wantT {
		t.Fatal("traversal omp mismatch")
	}
}

// TestTimingEnginesAgreeThroughOptimizationLoop emulates the paper's
// incremental use-case: a long sequence of design transforms with
// interleaved v1/v2 updates on identical circuits must keep both engines
// bit-identical and matching a from-scratch recompute.
func TestTimingEnginesAgreeThroughOptimizationLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := circuit.Config{Gates: 4000, Seed: 55}
	ckt1 := circuit.Generate("loop", cfg)
	ckt2 := circuit.Generate("loop", cfg)
	tm1 := sta.New(ckt1, experiments.ClockPeriod)
	tm2 := sta.New(ckt2, experiments.ClockPeriod)
	a1 := stav1.New(tm1, 2)
	defer a1.Close()
	a2 := stav2.New(tm2, 2)
	defer a2.Close()
	a1.Run(tm1.FullUpdate())
	a2.Run(tm2.FullUpdate())

	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		s1 := tm1.RandomModifier(rng1)
		s2 := tm2.RandomModifier(rng2)
		a1.Run(tm1.PrepareUpdate(s1))
		a2.Run(tm2.PrepareUpdate(s2))
	}
	for v := range ckt1.Gates {
		for tr := 0; tr < 2; tr++ {
			if tm1.Slack[tr][v] != tm2.Slack[tr][v] {
				t.Fatalf("slack[%d][%d] diverged: v1 %v, v2 %v", tr, v, tm1.Slack[tr][v], tm2.Slack[tr][v])
			}
			if tm1.Arrival[tr][v] != tm2.Arrival[tr][v] {
				t.Fatalf("arrival[%d][%d] diverged", tr, v)
			}
		}
	}
	ws1, at1 := tm1.WorstSlack()
	ws2, at2 := tm2.WorstSlack()
	if ws1 != ws2 || at1 != at2 {
		t.Fatalf("worst slack diverged: (%v,%d) vs (%v,%d)", ws1, at1, ws2, at2)
	}
	ref := sta.New(ckt1, experiments.ClockPeriod)
	ref.FullUpdateSequential()
	for v := range ckt1.Gates {
		for tr := 0; tr < 2; tr++ {
			if tm1.Slack[tr][v] != ref.Slack[tr][v] {
				t.Fatalf("incremental slack[%d][%d] diverged from full recompute", tr, v)
			}
		}
	}
}

// TestDNNBackendsProduceIdenticalModels trains all four backends on a
// shared executor topology and checks training actually learns.
func TestDNNBackendsProduceIdenticalModels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	data := mnist.Synthetic(1000, 77)
	cfg := dnn.Config{
		Sizes:     []int{mnist.Pixels, 24, 10},
		Epochs:    4,
		BatchSize: 50,
		LR:        0.2,
		Seed:      5,
	}
	seq, losses := dnn.TrainSequential(cfg, data)
	tf, _, errTF := dnn.TrainTaskflow(cfg, data, 2)
	if errTF != nil {
		t.Fatal(errTF)
	}
	fg, _ := dnn.TrainFlowGraph(cfg, data, 2)
	om, _ := dnn.TrainOMP(cfg, data, 2)
	if !seq.Equal(tf, 0) || !seq.Equal(fg, 0) || !seq.Equal(om, 0) {
		t.Fatal("backends trained different models")
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("training did not reduce loss: %v", losses)
	}
	if acc := dnn.Accuracy(seq, data); acc < 0.3 {
		t.Fatalf("train accuracy %v too low", acc)
	}
}

// TestSharedExecutorAcrossSubsystems runs the paper's modular-composition
// story: a timing analyzer and generic taskflows sharing one executor.
func TestSharedExecutorAcrossSubsystems(t *testing.T) {
	e := executor.New(2)
	defer e.Shutdown()

	ckt := circuit.Generate("shared", circuit.Config{Gates: 1000, Seed: 4})
	tm := sta.New(ckt, experiments.ClockPeriod)
	a := stav2.NewShared(tm, e)
	if err := a.Run(tm.FullUpdate()); err != nil {
		t.Fatal(err)
	}

	want := wavefront.Sequential(24, wavefront.Spin)
	got, err := wavefront.Taskflow(24, wavefront.Spin, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("wavefront alongside shared-executor timing failed")
	}

	ref := sta.New(ckt, experiments.ClockPeriod)
	ref.FullUpdateSequential()
	for v := range ckt.Gates {
		for tr := 0; tr < 2; tr++ {
			if tm.Slack[tr][v] != ref.Slack[tr][v] {
				t.Fatal("shared-executor timing result wrong")
			}
		}
	}
}

// TestFullExperimentHarnessSmoke drives the experiment harness the way
// cmd/repro does, at smoke scale.
func TestFullExperimentHarnessSmoke(t *testing.T) {
	root, err := experiments.SrcRoot()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := experiments.Table1(&sb, root); err != nil {
		t.Fatal(err)
	}
	if err := experiments.Fig7SizeSweep(&sb, 2, []int{8}, []int{300}, 1); err != nil {
		t.Fatal(err)
	}
	small := experiments.Design{Name: "smoke", Gates: 300, Seed: 2}
	if err := experiments.Fig9Incremental(&sb, small, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := experiments.Fig12Epochs(&sb, []int{mnist.Pixels, 8, 10}, "smoke", []int{1}, 200, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Figure 7", "Figure 9", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("harness output missing %q", want)
		}
	}
}

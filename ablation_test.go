// Ablation benchmarks for the scheduler design choices of the paper's
// Algorithm 1 (DESIGN.md): the per-worker speculative task cache, the
// probabilistic load-balancing wakeup, and the pre-park spin. Each
// benchmark runs the wavefront workload on an executor with one heuristic
// altered, so `go test -bench=Ablation` quantifies what each buys.
package gotaskflow_test

import (
	"sync/atomic"
	"testing"

	"gotaskflow/internal/executor"
	"gotaskflow/internal/wavefront"
)

const ablationSize = 96

func benchAblation(b *testing.B, opts ...executor.Option) {
	b.Helper()
	e := executor.New(workers(), opts...)
	defer e.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wavefront.TaskflowShared(ablationSize, wavefront.Spin, e)
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b)
}

func BenchmarkAblationNoTaskCache(b *testing.B) {
	benchAblation(b, executor.WithoutTaskCache())
}

func BenchmarkAblationNoWakeProbability(b *testing.B) {
	benchAblation(b, executor.WithWakeProbability(0))
}

func BenchmarkAblationEagerWake(b *testing.B) {
	benchAblation(b, executor.WithWakeProbability(1))
}

func BenchmarkAblationNoSpin(b *testing.B) {
	benchAblation(b, executor.WithSpin(0))
}

func BenchmarkAblationLongSpin(b *testing.B) {
	benchAblation(b, executor.WithSpin(256))
}

// TestAblationOptionsStillCorrect verifies every ablated configuration
// still executes graphs correctly — the knobs trade performance, never
// correctness.
func TestAblationOptionsStillCorrect(t *testing.T) {
	want := wavefront.Sequential(24, wavefront.Spin)
	configs := map[string][]executor.Option{
		"baseline":  nil,
		"noCache":   {executor.WithoutTaskCache()},
		"noWake":    {executor.WithWakeProbability(0)},
		"eagerWake": {executor.WithWakeProbability(1)},
		"noSpin":    {executor.WithSpin(0)},
		"longSpin":  {executor.WithSpin(256)},
	}
	for name, opts := range configs {
		e := executor.New(2, opts...)
		got, err := wavefront.TaskflowShared(24, wavefront.Spin, e)
		e.Shutdown()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: checksum %#x, want %#x", name, got, want)
		}
	}
}

// TestNoCacheExecutorDrainsEverything double-checks the no-cache path with
// a deep fan-out/fan-in workload.
func TestNoCacheExecutorDrainsEverything(t *testing.T) {
	e := executor.New(2, executor.WithoutTaskCache())
	defer e.Shutdown()
	var n atomic.Int64
	done := make(chan struct{})
	var spawn func(depth int) *executor.Runnable
	spawn = func(depth int) *executor.Runnable {
		return executor.NewTask(func(ctx executor.Context) {
			if n.Add(1) == 1<<10-1 {
				close(done)
			}
			if depth > 0 {
				ctx.SubmitCached(spawn(depth - 1)) // degrades to Submit
				ctx.Submit(spawn(depth - 1))
			}
		})
	}
	e.Submit(spawn(9))
	<-done
}
